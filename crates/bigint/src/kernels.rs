//! Runtime-dispatched CIOS multiplication kernels (SIMD + lockstep).
//!
//! [`crate::MontgomeryCtx::mont_mul`] bottoms out in a CIOS pass — the
//! single hottest loop in the stack. This module supplies drop-in
//! replacements for that pass that produce **byte-identical** results
//! (same `[0, N)` representative, same limb vector) while exploiting
//! data parallelism two different ways:
//!
//! * **Single-operation SIMD** ([`cios_avx2`], `cios_neon`): the 64-bit
//!   limbs are split into 32-bit digits stored one-per-64-bit-lane, so
//!   the lane multiplier the ISA actually has (`vpmuludq` on AVX2,
//!   `umull` on NEON — both 32×32→64) covers a full digit product.
//!   Carries are *not* propagated inside the loop: each digit slot
//!   accumulates raw `lo32`/`hi32` pieces, which is safe because a
//!   `k ≤ 8`-limb pass deposits at most `8·k·(2^32−1) < 2^38` into any
//!   slot — far below `u64` overflow. The two per-iteration scalar
//!   fix-ups (the `m = t₀·n' mod 2^64` factor and the exact ÷2^64 shift
//!   carry) read the lazy digits directly; see the proofs inline.
//! * **Lockstep SoA batching** ([`lockstep_portable`], `lockstep_avx2`):
//!   four *independent* multiplications advance through the same
//!   instruction stream with operands transposed into `[limb][lane]`
//!   (struct-of-arrays) buffers. The portable variant interleaves four
//!   u128 carry chains (instruction-level parallelism the serial loop
//!   can't expose); the AVX2 variant runs the digit algorithm with one
//!   lane per element.
//!
//! Dispatch is decided once per process by [`KernelKind::active`]:
//! runtime feature detection (`is_x86_feature_detected!`), overridable
//! via the `SLA_SIMD` environment variable (`auto`/`scalar`/`portable`/
//! `avx2`/`neon`) so CI can pin either path. The scalar loop in
//! `montgomery.rs` remains the proptest oracle; every kernel here is
//! pinned byte-identical to it (`tests/proptest_kernels.rs`).

// The crate denies `unsafe_code`; the `std::arch` intrinsics below are
// the one sanctioned exception, scoped to this module. Every unsafe
// block carries its safety argument.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Maximum modulus limb count the vector kernels cover (512-bit moduli —
/// beyond every group order the simulation uses). Larger moduli fall
/// back to the scalar loop.
pub(crate) const KMAX: usize = 8;
/// 32-bit digits per operand.
const DMAX: usize = 2 * KMAX;
/// Digit-buffer capacity: `2k` digits plus padding so 4-digit vector
/// loads at the tail stay in bounds (padding digits are zero, so the
/// extra lanes contribute nothing).
const DIG_PAD: usize = DMAX + 8;
/// Accumulator capacity in digits: the offset advances 2 per iteration
/// (≤ `2(KMAX−1)`), live digits span `2k + 2` more, and tail vector
/// stores may touch 3 past that.
const ACC_PAD: usize = 4 * KMAX + 8;
/// Base lockstep width: one element per 64-bit AVX2 vector lane.
pub(crate) const LANES: usize = 4;
/// Wide lockstep width: two interleaved 4-lane groups per instruction
/// stream. Exponentiation ladders supply batches deep enough to fill it;
/// the extra independent chains hide the multiply latency a single
/// 4-lane group leaves on the table.
pub(crate) const LANES8: usize = 2 * LANES;
const MASK32: u64 = 0xffff_ffff;

/// Which CIOS kernel the active [`crate::MontgomeryCtx`] dispatch uses.
///
/// Selected once per process by [`KernelKind::active`]; tests pin a
/// specific kernel through `MontgomeryCtx::mont_mul_with` instead (the
/// env override is process-global, so in-process oracle comparisons
/// need the explicit API).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The u128 schoolbook CIOS loop — the oracle every other kernel is
    /// pinned against. Batches run serially.
    Scalar,
    /// Scalar single multiplications, but batches run the lockstep
    /// struct-of-arrays path with four interleaved carry chains (an ILP
    /// win on any 64-bit CPU, no intrinsics required).
    Portable,
    /// AVX2 digit kernels for both single multiplications and lockstep
    /// batches (x86-64 with AVX2).
    Avx2,
    /// NEON digit kernel for single multiplications (aarch64); batches
    /// run the portable lockstep path.
    Neon,
}

impl KernelKind {
    /// Stable lower-case name (matches the `SLA_SIMD` tokens).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Portable => "portable",
            KernelKind::Avx2 => "avx2",
            KernelKind::Neon => "neon",
        }
    }

    /// Whether this kernel can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            KernelKind::Scalar | KernelKind::Portable => true,
            KernelKind::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelKind::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// Every kernel runnable on this CPU (used by the oracle proptests
    /// to sweep all locally testable paths).
    pub fn all_available() -> Vec<KernelKind> {
        [
            KernelKind::Scalar,
            KernelKind::Portable,
            KernelKind::Avx2,
            KernelKind::Neon,
        ]
        .into_iter()
        .filter(|k| k.available())
        .collect()
    }

    /// Best kernel the current CPU supports.
    fn detect() -> KernelKind {
        if KernelKind::Avx2.available() {
            KernelKind::Avx2
        } else if KernelKind::Neon.available() {
            KernelKind::Neon
        } else {
            KernelKind::Portable
        }
    }

    /// The process-wide kernel: `SLA_SIMD` override if set, runtime
    /// detection otherwise. Decided once and cached.
    ///
    /// # Panics
    /// Panics (once, at first arithmetic) if `SLA_SIMD` names an unknown
    /// kernel or one the CPU lacks — a forced override that silently
    /// fell back would defeat its purpose (CI legs pin each path).
    pub fn active() -> KernelKind {
        Self::resolve().0
    }

    /// Like [`KernelKind::active`], but also reports whether `SLA_SIMD`
    /// **forced** the choice (anything but unset/`auto`). Auto-detected
    /// and forced dispatch differ on *single* multiplications: one CIOS
    /// pass is a serial carry chain, and the digit kernels measure
    /// slower than the scalar loop at every limb count they accept, so
    /// auto reserves vector execution for the lockstep batch path (four
    /// independent products per instruction — where it wins). A forced
    /// kernel runs single ops too, which is what the oracle CI legs pin.
    pub fn active_forced() -> (KernelKind, bool) {
        Self::resolve()
    }

    /// Parses one `SLA_SIMD` token (case-insensitive); `None` for
    /// unknown values, which the dispatch turns into a loud panic via
    /// [`KernelKind::unknown_env_message`] — a forced override that
    /// silently fell back would defeat its purpose.
    fn parse_env_token(v: &str) -> Option<(KernelKind, bool)> {
        match v.to_ascii_lowercase().as_str() {
            "" | "auto" => Some((KernelKind::detect(), false)),
            "scalar" => Some((KernelKind::Scalar, true)),
            "portable" => Some((KernelKind::Portable, true)),
            "avx2" => Some((KernelKind::Avx2, true)),
            "neon" => Some((KernelKind::Neon, true)),
            _ => None,
        }
    }

    /// The error raised at first dispatch for an unknown `SLA_SIMD`
    /// value — always surfaces the full accepted set.
    fn unknown_env_message(other: &str) -> String {
        format!("SLA_SIMD={other:?}: unknown kernel (expected auto|scalar|portable|avx2|neon)")
    }

    fn resolve() -> (KernelKind, bool) {
        static ACTIVE: OnceLock<(KernelKind, bool)> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let (kind, forced) = match std::env::var("SLA_SIMD") {
                Err(_) => (KernelKind::detect(), false),
                Ok(v) => Self::parse_env_token(&v)
                    .unwrap_or_else(|| panic!("{}", Self::unknown_env_message(&v))),
            };
            assert!(
                kind.available(),
                "SLA_SIMD forced the {} kernel but this CPU does not support it",
                kind.name()
            );
            (kind, forced)
        })
    }
}

/// Below this limb count, auto-detected batch dispatch prefers the
/// portable lockstep kernel over the AVX2 digit kernel.
///
/// The AVX2 lockstep works in 32-bit digits (`_mm256_mul_epu32` is the
/// widest lanewise multiply AVX2 offers), doubling the recurrence length
/// per product; four interleaved u128 carry chains keep 64-bit scalar
/// multipliers saturated instead and measure faster up to roughly this
/// many limbs, where the digit kernel reaches parity. A forced
/// `SLA_SIMD` override bypasses the heuristic.
pub(crate) const AVX2_MIN_BATCH_LIMBS: usize = 6;

/// Splits little-endian limbs into 32-bit digits stored one per `u64`
/// slot of `out` (which the caller pre-zeroed; `src` may be shorter
/// than `k` — missing limbs are zero).
#[inline]
fn to_digits(src: &[u64], k: usize, out: &mut [u64]) {
    for i in 0..k {
        let l = src.get(i).copied().unwrap_or(0);
        out[2 * i] = l & MASK32;
        out[2 * i + 1] = l >> 32;
    }
}

/// The modulus' digit expansion, padded for vector loads — precomputed
/// once per [`crate::MontgomeryCtx`] when `k ≤ KMAX`.
pub(crate) fn modulus_digits(nl: &[u64]) -> Vec<u64> {
    let mut v = vec![0u64; DIG_PAD];
    to_digits(nl, nl.len(), &mut v);
    v
}

/// Carries the lazy digit accumulator into limbs, then applies the same
/// conditional subtraction as the scalar loop. Writes the reduced
/// result into `t[..k]` with `t[k] == 0`, matching the scalar CIOS
/// output contract exactly.
#[inline]
fn finish_digits(acc: &[u64], o: usize, nl: &[u64], t: &mut [u64]) {
    let k = nl.len();
    let mut carry = 0u128;
    for (limb, tl) in t.iter_mut().enumerate().take(k + 1) {
        // Digit magnitudes are < 2^39 (see the accumulation bound), so
        // lo + (hi << 32) + carry < 2^72 — no u128 overflow.
        let v = acc[o + 2 * limb] as u128 + ((acc[o + 2 * limb + 1] as u128) << 32) + carry;
        *tl = v as u64;
        carry = v >> 64;
    }
    // The pre-subtraction CIOS result is < 2N < 2^{64(k+1)}.
    debug_assert_eq!(carry, 0);
    if t[k] != 0 || !crate::montgomery::limbs_lt(&t[..k], nl) {
        crate::montgomery::limbs_sub_assign(&mut t[..=k], nl);
    }
    debug_assert_eq!(t[k], 0);
}

// ---------------------------------------------------------------------
// AVX2 single-operation digit kernel (x86-64)
// ---------------------------------------------------------------------

/// One CIOS pass via AVX2 digit vectors; same contract as the scalar
/// `MontgomeryCtx::cios` (result in `t[..k]`, `t[k..] == 0`).
///
/// `nd` is the padded digit expansion from [`modulus_digits`].
#[cfg(target_arch = "x86_64")]
pub(crate) fn cios_avx2(nl: &[u64], nd: &[u64], n0_inv: u64, a: &[u64], b: &[u64], t: &mut [u64]) {
    debug_assert!(KernelKind::Avx2.available());
    // SAFETY: the dispatch (and the debug assert above) guarantees AVX2
    // is present on this CPU.
    unsafe { cios_avx2_inner(nl, nd, n0_inv, a, b, t) }
}

/// Adds the digit products `factor_lo·digits` and `factor_hi·digits·2^32`
/// into `acc` (both factors < 2^32), four digits per step. Each 64-bit
/// product is pre-split into `lo32`/`hi32` pieces so the lazy
/// accumulator slots stay far below overflow. Chunks overlap by two
/// digit positions; the loads/stores of consecutive steps are ordered,
/// so the overlap is carried correctly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_avx2(
    digits: &[u64],
    d: usize,
    factor_lo: u64,
    factor_hi: u64,
    acc: &mut [u64],
) {
    use std::arch::x86_64::*;
    debug_assert!(digits.len() >= d + 2 && acc.len() >= d + 8);
    let vlo = _mm256_set1_epi64x(factor_lo as i64);
    let vhi = _mm256_set1_epi64x(factor_hi as i64);
    let mask = _mm256_set1_epi64x(MASK32 as i64);
    let dp = digits.as_ptr();
    let ap = acc.as_mut_ptr();
    let mut j = 0;
    while j < d {
        // SAFETY: j ≤ d−1, so the widest access (acc[j+2 .. j+6)) stays
        // within the padded buffers per the debug bound above.
        let vb = _mm256_loadu_si256(dp.add(j) as *const __m256i);
        let plo = _mm256_mul_epu32(vb, vlo);
        let phi = _mm256_mul_epu32(vb, vhi);
        let add0 = _mm256_and_si256(plo, mask);
        let add1 = _mm256_add_epi64(_mm256_srli_epi64::<32>(plo), _mm256_and_si256(phi, mask));
        let add2 = _mm256_srli_epi64::<32>(phi);
        let t0 = _mm256_loadu_si256(ap.add(j) as *const __m256i);
        _mm256_storeu_si256(ap.add(j) as *mut __m256i, _mm256_add_epi64(t0, add0));
        let t1 = _mm256_loadu_si256(ap.add(j + 1) as *const __m256i);
        _mm256_storeu_si256(ap.add(j + 1) as *mut __m256i, _mm256_add_epi64(t1, add1));
        let t2 = _mm256_loadu_si256(ap.add(j + 2) as *const __m256i);
        _mm256_storeu_si256(ap.add(j + 2) as *mut __m256i, _mm256_add_epi64(t2, add2));
        j += 4;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn cios_avx2_inner(
    nl: &[u64],
    nd: &[u64],
    n0_inv: u64,
    a: &[u64],
    b: &[u64],
    t: &mut [u64],
) {
    let k = nl.len();
    let d = 2 * k;
    debug_assert!(k <= KMAX && nd.len() >= DIG_PAD);
    let mut bd = [0u64; DIG_PAD];
    to_digits(b, k, &mut bd);
    let mut acc = [0u64; ACC_PAD];
    let mut o = 0usize; // digit offset: consumed digits are never revisited
    for i in 0..k {
        let ai = a.get(i).copied().unwrap_or(0);
        accumulate_avx2(&bd, d, ai & MASK32, ai >> 32, &mut acc[o..]);
        // m = t₀·n' mod 2^64. The lazy digits satisfy
        // t mod 2^64 = (acc[o] + acc[o+1]·2^32) mod 2^64, because every
        // higher digit contributes a multiple of 2^64.
        let m = acc[o].wrapping_add(acc[o + 1] << 32).wrapping_mul(n0_inv);
        accumulate_avx2(nd, d, m & MASK32, m >> 32, &mut acc[o..]);
        // Exact ÷2^64 shift: S = acc[o] + (acc[o+1] mod 2^32)·2^32 is
        // ≡ 0 (mod 2^64) by choice of m and < 2^65, hence S ∈ {0, 2^64};
        // S = 2^64 exactly when acc[o] ≠ 0.
        debug_assert_eq!(acc[o].wrapping_add(acc[o + 1] << 32), 0);
        let carry = (acc[o + 1] >> 32) + (acc[o] != 0) as u64;
        acc[o + 2] += carry;
        o += 2;
    }
    finish_digits(&acc, o, nl, t);
}

// ---------------------------------------------------------------------
// NEON single-operation digit kernel (aarch64)
// ---------------------------------------------------------------------

/// One CIOS pass via NEON digit vectors (`umull`); same contract and
/// algorithm as [`cios_avx2`], two digits per step.
#[cfg(target_arch = "aarch64")]
pub(crate) fn cios_neon(nl: &[u64], nd: &[u64], n0_inv: u64, a: &[u64], b: &[u64], t: &mut [u64]) {
    // SAFETY: NEON is part of the aarch64 baseline ISA.
    unsafe { cios_neon_inner(nl, nd, n0_inv, a, b, t) }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn accumulate_neon(
    digits: &[u64],
    d: usize,
    factor_lo: u64,
    factor_hi: u64,
    acc: &mut [u64],
) {
    use std::arch::aarch64::*;
    debug_assert!(digits.len() >= d && acc.len() >= d + 4);
    let vlo = vdup_n_u32(factor_lo as u32);
    let vhi = vdup_n_u32(factor_hi as u32);
    let mask = vdupq_n_u64(MASK32);
    let dp = digits.as_ptr();
    let ap = acc.as_mut_ptr();
    let mut j = 0;
    while j < d {
        // SAFETY: d is even and j ≤ d−2, so the widest access
        // (acc[j+2 .. j+4)) stays inside the padded buffers.
        let vb = vmovn_u64(vld1q_u64(dp.add(j))); // digits < 2^32: lossless narrow
        let plo = vmull_u32(vb, vlo);
        let phi = vmull_u32(vb, vhi);
        let add0 = vandq_u64(plo, mask);
        let add1 = vaddq_u64(vshrq_n_u64::<32>(plo), vandq_u64(phi, mask));
        let add2 = vshrq_n_u64::<32>(phi);
        vst1q_u64(ap.add(j), vaddq_u64(vld1q_u64(ap.add(j)), add0));
        vst1q_u64(ap.add(j + 1), vaddq_u64(vld1q_u64(ap.add(j + 1)), add1));
        vst1q_u64(ap.add(j + 2), vaddq_u64(vld1q_u64(ap.add(j + 2)), add2));
        j += 2;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn cios_neon_inner(
    nl: &[u64],
    nd: &[u64],
    n0_inv: u64,
    a: &[u64],
    b: &[u64],
    t: &mut [u64],
) {
    let k = nl.len();
    let d = 2 * k;
    debug_assert!(k <= KMAX && nd.len() >= DIG_PAD);
    let mut bd = [0u64; DIG_PAD];
    to_digits(b, k, &mut bd);
    let mut acc = [0u64; ACC_PAD];
    let mut o = 0usize;
    for i in 0..k {
        let ai = a.get(i).copied().unwrap_or(0);
        accumulate_neon(&bd, d, ai & MASK32, ai >> 32, &mut acc[o..]);
        let m = acc[o].wrapping_add(acc[o + 1] << 32).wrapping_mul(n0_inv);
        accumulate_neon(nd, d, m & MASK32, m >> 32, &mut acc[o..]);
        debug_assert_eq!(acc[o].wrapping_add(acc[o + 1] << 32), 0);
        let carry = (acc[o + 1] >> 32) + (acc[o] != 0) as u64;
        acc[o + 2] += carry;
        o += 2;
    }
    finish_digits(&acc, o, nl, t);
}

// ---------------------------------------------------------------------
// Lockstep struct-of-arrays batch kernels
// ---------------------------------------------------------------------

/// `L` independent CIOS passes in lockstep, portable Rust: the exact
/// scalar recurrence per lane, but with operands transposed into
/// `[limb][lane]` (SoA) buffers so the `L` u128 carry chains
/// interleave — the compiler schedules them in parallel where the
/// serial loop is one long dependency chain. Byte-identical to `L`
/// scalar passes by construction (same arithmetic per lane).
///
/// Instantiated at [`LANES`] (4) for shallow batches and [`LANES8`] (8)
/// for ladder-depth ones; the width is a const generic so each
/// instantiation unrolls its lane loops fully.
///
/// `out[limb][lane]` receives the reduced results (`out.len() >= k`).
#[allow(clippy::needless_range_loop)] // lane/limb index math mirrors the SoA layout
pub(crate) fn lockstep_portable<const L: usize>(
    nl: &[u64],
    n0_inv: u64,
    a: &[&[u64]; L],
    b: &[&[u64]; L],
    out: &mut [[u64; L]],
) {
    let k = nl.len();
    debug_assert!(k <= KMAX && out.len() >= k);
    // SoA transpose of b: bt[limb][lane].
    let mut bt = [[0u64; L]; KMAX];
    for lane in 0..L {
        for j in 0..k {
            bt[j][lane] = b[lane].get(j).copied().unwrap_or(0);
        }
    }
    let mut t = [[0u64; L]; KMAX + 2];
    for i in 0..k {
        let mut ai = [0u64; L];
        for lane in 0..L {
            ai[lane] = a[lane].get(i).copied().unwrap_or(0);
        }
        // t += a_i · b, L carry chains interleaved.
        let mut carry = [0u128; L];
        for j in 0..k {
            for lane in 0..L {
                let s = t[j][lane] as u128 + ai[lane] as u128 * bt[j][lane] as u128 + carry[lane];
                t[j][lane] = s as u64;
                carry[lane] = s >> 64;
            }
        }
        let mut m = [0u64; L];
        for lane in 0..L {
            let s = t[k][lane] as u128 + carry[lane];
            t[k][lane] = s as u64;
            t[k + 1][lane] = (s >> 64) as u64;
            m[lane] = t[0][lane].wrapping_mul(n0_inv);
            carry[lane] = (t[0][lane] as u128 + m[lane] as u128 * nl[0] as u128) >> 64;
        }
        // t = (t + m·N) >> 64
        for j in 1..k {
            for lane in 0..L {
                let s = t[j][lane] as u128 + m[lane] as u128 * nl[j] as u128 + carry[lane];
                t[j - 1][lane] = s as u64;
                carry[lane] = s >> 64;
            }
        }
        for lane in 0..L {
            let s = t[k][lane] as u128 + carry[lane];
            t[k - 1][lane] = s as u64;
            t[k][lane] = t[k + 1][lane].wrapping_add((s >> 64) as u64);
            t[k + 1][lane] = 0;
        }
    }
    for lane in 0..L {
        let mut tl = [0u64; KMAX + 2];
        for j in 0..=k {
            tl[j] = t[j][lane];
        }
        if tl[k] != 0 || !crate::montgomery::limbs_lt(&tl[..k], nl) {
            crate::montgomery::limbs_sub_assign(&mut tl[..=k], nl);
        }
        debug_assert_eq!(tl[k], 0);
        for j in 0..k {
            out[j][lane] = tl[j];
        }
    }
}

/// Four independent CIOS passes in lockstep via AVX2: the digit
/// algorithm of [`cios_avx2`] with one *element* per 64-bit lane
/// instead of four digits of one element — digit `j` of the four
/// operands occupies one vector. The modulus is shared across lanes
/// (broadcast); the per-lane `m` factors need a lanewise 64-bit low
/// product, composed from three `vpmuludq` partials.
#[cfg(target_arch = "x86_64")]
pub(crate) fn lockstep_avx2(
    nl: &[u64],
    nd: &[u64],
    n0_inv: u64,
    a: &[&[u64]; LANES],
    b: &[&[u64]; LANES],
    out: &mut [[u64; LANES]],
) {
    debug_assert!(KernelKind::Avx2.available());
    // SAFETY: the dispatch guarantees AVX2 is present.
    unsafe { lockstep_avx2_inner(nl, nd, n0_inv, a, b, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::needless_range_loop)] // lane/digit index math mirrors the SoA layout
unsafe fn lockstep_avx2_inner(
    nl: &[u64],
    nd: &[u64],
    n0_inv: u64,
    a: &[&[u64]; LANES],
    b: &[&[u64]; LANES],
    out: &mut [[u64; LANES]],
) {
    use std::arch::x86_64::*;

    /// Lanewise 64-bit low product from three 32×32 partials.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mullo64(x: __m256i, y: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(x, y);
        let cross = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_srli_epi64::<32>(x), y),
            _mm256_mul_epu32(x, _mm256_srli_epi64::<32>(y)),
        );
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    let k = nl.len();
    let d = 2 * k;
    debug_assert!(k <= KMAX && nd.len() >= DIG_PAD && out.len() >= k);

    // Digit-strided SoA transpose of b: digit j's four lanes live at
    // bt[LANES*j .. LANES*j + LANES] — every vector access is a whole,
    // aligned-by-construction 4-lane group, so unlike the single-op
    // kernel no accesses overlap.
    let mut bt = [0u64; LANES * DIG_PAD];
    for lane in 0..LANES {
        for i in 0..k {
            let l = b[lane].get(i).copied().unwrap_or(0);
            bt[LANES * (2 * i) + lane] = l & MASK32;
            bt[LANES * (2 * i + 1) + lane] = l >> 32;
        }
    }
    let mut acc = [0u64; LANES * ACC_PAD];
    let mask = _mm256_set1_epi64x(MASK32 as i64);
    let zero = _mm256_setzero_si256();
    let one = _mm256_set1_epi64x(1);
    let n0v = _mm256_set1_epi64x(n0_inv as i64);

    // acc digit s, as a 4-lane vector.
    macro_rules! lo {
        ($s:expr) => {
            _mm256_loadu_si256(acc.as_ptr().add(LANES * ($s)) as *const __m256i)
        };
    }
    macro_rules! st {
        ($s:expr, $v:expr) => {
            _mm256_storeu_si256(acc.as_mut_ptr().add(LANES * ($s)) as *mut __m256i, $v)
        };
    }

    let mut o = 0usize;
    for i in 0..k {
        let av = _mm256_set_epi64x(
            a[3].get(i).copied().unwrap_or(0) as i64,
            a[2].get(i).copied().unwrap_or(0) as i64,
            a[1].get(i).copied().unwrap_or(0) as i64,
            a[0].get(i).copied().unwrap_or(0) as i64,
        );
        let al = _mm256_and_si256(av, mask);
        let ah = _mm256_srli_epi64::<32>(av);
        // acc += a_i · b (digit products, per-lane operand digits).
        for j in 0..d {
            let vb = _mm256_loadu_si256(bt.as_ptr().add(LANES * j) as *const __m256i);
            let plo = _mm256_mul_epu32(vb, al);
            let phi = _mm256_mul_epu32(vb, ah);
            st!(
                o + j,
                _mm256_add_epi64(lo!(o + j), _mm256_and_si256(plo, mask))
            );
            st!(
                o + j + 1,
                _mm256_add_epi64(
                    lo!(o + j + 1),
                    _mm256_add_epi64(_mm256_srli_epi64::<32>(plo), _mm256_and_si256(phi, mask)),
                )
            );
            st!(
                o + j + 2,
                _mm256_add_epi64(lo!(o + j + 2), _mm256_srli_epi64::<32>(phi))
            );
        }
        // Per-lane m = t₀·n' mod 2^64 from the lazy digits.
        let t0 = _mm256_add_epi64(lo!(o), _mm256_slli_epi64::<32>(lo!(o + 1)));
        let m = mullo64(t0, n0v);
        let ml = _mm256_and_si256(m, mask);
        let mh = _mm256_srli_epi64::<32>(m);
        // acc += m · N (modulus digits broadcast — shared across lanes).
        for j in 0..d {
            let vn = _mm256_set1_epi64x(nd[j] as i64);
            let plo = _mm256_mul_epu32(vn, ml);
            let phi = _mm256_mul_epu32(vn, mh);
            st!(
                o + j,
                _mm256_add_epi64(lo!(o + j), _mm256_and_si256(plo, mask))
            );
            st!(
                o + j + 1,
                _mm256_add_epi64(
                    lo!(o + j + 1),
                    _mm256_add_epi64(_mm256_srli_epi64::<32>(plo), _mm256_and_si256(phi, mask)),
                )
            );
            st!(
                o + j + 2,
                _mm256_add_epi64(lo!(o + j + 2), _mm256_srli_epi64::<32>(phi))
            );
        }
        // Exact ÷2^64 shift per lane (same argument as the single-op
        // kernel, vectorized: the +1 materializes via a compare mask).
        let acc0 = lo!(o);
        let acc1 = lo!(o + 1);
        let nz = _mm256_andnot_si256(_mm256_cmpeq_epi64(acc0, zero), one);
        let carry = _mm256_add_epi64(_mm256_srli_epi64::<32>(acc1), nz);
        st!(o + 2, _mm256_add_epi64(lo!(o + 2), carry));
        o += 2;
    }

    // Per-lane digit→limb carry propagation + conditional subtract.
    for lane in 0..LANES {
        let mut tl = [0u64; KMAX + 2];
        let mut carry = 0u128;
        for limb in 0..=k {
            let v = acc[LANES * (o + 2 * limb) + lane] as u128
                + ((acc[LANES * (o + 2 * limb + 1) + lane] as u128) << 32)
                + carry;
            tl[limb] = v as u64;
            carry = v >> 64;
        }
        debug_assert_eq!(carry, 0);
        if tl[k] != 0 || !crate::montgomery::limbs_lt(&tl[..k], nl) {
            crate::montgomery::limbs_sub_assign(&mut tl[..=k], nl);
        }
        debug_assert_eq!(tl[k], 0);
        for j in 0..k {
            out[j][lane] = tl[j];
        }
    }
}

/// Eight independent CIOS passes in lockstep via AVX2: the digit
/// algorithm of [`lockstep_avx2`], but with two 4-lane half-groups
/// interleaved through one instruction stream (digit `j` of the eight
/// operands spans two consecutive vectors at stride [`LANES8`]). A
/// single 4-lane group leaves the 5-cycle `vpmuludq` latency exposed on
/// its dependent accumulate chain; the second half-group's independent
/// chain fills those slots, which is where the 8-wide ladder speedup
/// comes from.
#[cfg(target_arch = "x86_64")]
pub(crate) fn lockstep_avx2_8(
    nl: &[u64],
    nd: &[u64],
    n0_inv: u64,
    a: &[&[u64]; LANES8],
    b: &[&[u64]; LANES8],
    out: &mut [[u64; LANES8]],
) {
    debug_assert!(KernelKind::Avx2.available());
    // SAFETY: the dispatch guarantees AVX2 is present.
    unsafe { lockstep_avx2_8_inner(nl, nd, n0_inv, a, b, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::needless_range_loop)] // lane/digit index math mirrors the SoA layout
unsafe fn lockstep_avx2_8_inner(
    nl: &[u64],
    nd: &[u64],
    n0_inv: u64,
    a: &[&[u64]; LANES8],
    b: &[&[u64]; LANES8],
    out: &mut [[u64; LANES8]],
) {
    use std::arch::x86_64::*;

    /// Lanewise 64-bit low product from three 32×32 partials.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mullo64(x: __m256i, y: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(x, y);
        let cross = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_srli_epi64::<32>(x), y),
            _mm256_mul_epu32(x, _mm256_srli_epi64::<32>(y)),
        );
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    let k = nl.len();
    let d = 2 * k;
    debug_assert!(k <= KMAX && nd.len() >= DIG_PAD && out.len() >= k);

    // Digit-strided SoA transpose of b at stride 8: digit j's lanes live
    // at bt[LANES8*j .. LANES8*j + LANES8], half-group h occupying the
    // vector at offset 4h. Whole-group accesses only — no overlap.
    let mut bt = [0u64; LANES8 * DIG_PAD];
    for lane in 0..LANES8 {
        for i in 0..k {
            let l = b[lane].get(i).copied().unwrap_or(0);
            bt[LANES8 * (2 * i) + lane] = l & MASK32;
            bt[LANES8 * (2 * i + 1) + lane] = l >> 32;
        }
    }
    let mut acc = [0u64; LANES8 * ACC_PAD];
    let mask = _mm256_set1_epi64x(MASK32 as i64);
    let zero = _mm256_setzero_si256();
    let one = _mm256_set1_epi64x(1);
    let n0v = _mm256_set1_epi64x(n0_inv as i64);

    // acc digit s, half-group h, as a 4-lane vector.
    macro_rules! lo {
        ($s:expr, $h:expr) => {
            _mm256_loadu_si256(acc.as_ptr().add(LANES8 * ($s) + LANES * ($h)) as *const __m256i)
        };
    }
    macro_rules! st {
        ($s:expr, $h:expr, $v:expr) => {
            _mm256_storeu_si256(
                acc.as_mut_ptr().add(LANES8 * ($s) + LANES * ($h)) as *mut __m256i,
                $v,
            )
        };
    }

    let mut o = 0usize;
    for i in 0..k {
        let av = [
            _mm256_set_epi64x(
                a[3].get(i).copied().unwrap_or(0) as i64,
                a[2].get(i).copied().unwrap_or(0) as i64,
                a[1].get(i).copied().unwrap_or(0) as i64,
                a[0].get(i).copied().unwrap_or(0) as i64,
            ),
            _mm256_set_epi64x(
                a[7].get(i).copied().unwrap_or(0) as i64,
                a[6].get(i).copied().unwrap_or(0) as i64,
                a[5].get(i).copied().unwrap_or(0) as i64,
                a[4].get(i).copied().unwrap_or(0) as i64,
            ),
        ];
        let al = [_mm256_and_si256(av[0], mask), _mm256_and_si256(av[1], mask)];
        let ah = [
            _mm256_srli_epi64::<32>(av[0]),
            _mm256_srli_epi64::<32>(av[1]),
        ];
        // acc += a_i · b (digit products, per-lane operand digits); the
        // two half-groups' dependent chains interleave per digit.
        for j in 0..d {
            for h in 0..2 {
                let vb =
                    _mm256_loadu_si256(bt.as_ptr().add(LANES8 * j + LANES * h) as *const __m256i);
                let plo = _mm256_mul_epu32(vb, al[h]);
                let phi = _mm256_mul_epu32(vb, ah[h]);
                st!(
                    o + j,
                    h,
                    _mm256_add_epi64(lo!(o + j, h), _mm256_and_si256(plo, mask))
                );
                st!(
                    o + j + 1,
                    h,
                    _mm256_add_epi64(
                        lo!(o + j + 1, h),
                        _mm256_add_epi64(_mm256_srli_epi64::<32>(plo), _mm256_and_si256(phi, mask),),
                    )
                );
                st!(
                    o + j + 2,
                    h,
                    _mm256_add_epi64(lo!(o + j + 2, h), _mm256_srli_epi64::<32>(phi))
                );
            }
        }
        // Per-lane m = t₀·n' mod 2^64 from the lazy digits, per half.
        let m = [
            mullo64(
                _mm256_add_epi64(lo!(o, 0), _mm256_slli_epi64::<32>(lo!(o + 1, 0))),
                n0v,
            ),
            mullo64(
                _mm256_add_epi64(lo!(o, 1), _mm256_slli_epi64::<32>(lo!(o + 1, 1))),
                n0v,
            ),
        ];
        let ml = [_mm256_and_si256(m[0], mask), _mm256_and_si256(m[1], mask)];
        let mh = [_mm256_srli_epi64::<32>(m[0]), _mm256_srli_epi64::<32>(m[1])];
        // acc += m · N (modulus digits broadcast — shared across lanes).
        for j in 0..d {
            let vn = _mm256_set1_epi64x(nd[j] as i64);
            for h in 0..2 {
                let plo = _mm256_mul_epu32(vn, ml[h]);
                let phi = _mm256_mul_epu32(vn, mh[h]);
                st!(
                    o + j,
                    h,
                    _mm256_add_epi64(lo!(o + j, h), _mm256_and_si256(plo, mask))
                );
                st!(
                    o + j + 1,
                    h,
                    _mm256_add_epi64(
                        lo!(o + j + 1, h),
                        _mm256_add_epi64(_mm256_srli_epi64::<32>(plo), _mm256_and_si256(phi, mask),),
                    )
                );
                st!(
                    o + j + 2,
                    h,
                    _mm256_add_epi64(lo!(o + j + 2, h), _mm256_srli_epi64::<32>(phi))
                );
            }
        }
        // Exact ÷2^64 shift per lane (same argument as the 4-wide
        // kernel, per half-group).
        for h in 0..2 {
            let acc0 = lo!(o, h);
            let acc1 = lo!(o + 1, h);
            let nz = _mm256_andnot_si256(_mm256_cmpeq_epi64(acc0, zero), one);
            let carry = _mm256_add_epi64(_mm256_srli_epi64::<32>(acc1), nz);
            st!(o + 2, h, _mm256_add_epi64(lo!(o + 2, h), carry));
        }
        o += 2;
    }

    // Per-lane digit→limb carry propagation + conditional subtract.
    for lane in 0..LANES8 {
        let mut tl = [0u64; KMAX + 2];
        let mut carry = 0u128;
        for limb in 0..=k {
            let v = acc[LANES8 * (o + 2 * limb) + lane] as u128
                + ((acc[LANES8 * (o + 2 * limb + 1) + lane] as u128) << 32)
                + carry;
            tl[limb] = v as u64;
            carry = v >> 64;
        }
        debug_assert_eq!(carry, 0);
        if tl[k] != 0 || !crate::montgomery::limbs_lt(&tl[..k], nl) {
            crate::montgomery::limbs_sub_assign(&mut tl[..=k], nl);
        }
        debug_assert_eq!(tl[k], 0);
        for j in 0..k {
            out[j][lane] = tl[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_portable_always_available() {
        assert!(KernelKind::Scalar.available());
        assert!(KernelKind::Portable.available());
        assert!(KernelKind::all_available().contains(&KernelKind::Scalar));
    }

    #[test]
    fn names_match_env_tokens() {
        for k in [
            KernelKind::Scalar,
            KernelKind::Portable,
            KernelKind::Avx2,
            KernelKind::Neon,
        ] {
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn active_is_available() {
        let k = KernelKind::active();
        assert!(k.available(), "active kernel {} must be runnable", k.name());
    }

    #[test]
    fn env_tokens_parse_case_insensitively() {
        for (token, want, forced) in [
            ("scalar", KernelKind::Scalar, true),
            ("SCALAR", KernelKind::Scalar, true),
            ("portable", KernelKind::Portable, true),
            ("Avx2", KernelKind::Avx2, true),
            ("neon", KernelKind::Neon, true),
        ] {
            assert_eq!(
                KernelKind::parse_env_token(token),
                Some((want, forced)),
                "token {token:?}"
            );
        }
        for token in ["", "auto", "AUTO"] {
            let (kind, forced) = KernelKind::parse_env_token(token).expect("auto parses");
            assert!(!forced, "token {token:?} must not force");
            assert!(kind.available());
        }
    }

    #[test]
    fn unknown_env_tokens_are_rejected_loudly() {
        for bogus in ["avx512", "sse2", "yes", "scalar ", "0"] {
            assert_eq!(
                KernelKind::parse_env_token(bogus),
                None,
                "token {bogus:?} must not parse"
            );
            let msg = KernelKind::unknown_env_message(bogus);
            assert!(msg.contains(bogus), "message must echo the bad value");
            for accepted in ["auto", "scalar", "portable", "avx2", "neon"] {
                assert!(
                    msg.contains(accepted),
                    "message must surface the accepted set ({accepted}): {msg}"
                );
            }
        }
    }

    #[test]
    fn digit_split_roundtrip() {
        let limbs = [u64::MAX, 0x0123_4567_89ab_cdef, 0];
        let mut digits = [0u64; DIG_PAD];
        to_digits(&limbs, 3, &mut digits);
        for (i, &l) in limbs.iter().enumerate() {
            assert_eq!(digits[2 * i] | (digits[2 * i + 1] << 32), l);
            assert!(digits[2 * i] <= MASK32 && digits[2 * i + 1] <= MASK32);
        }
    }
}
