//! Primality testing (Miller–Rabin) and random prime generation.

use crate::random::{random_below, random_bits};
use crate::BigUint;
use rand::Rng;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// Tuning knobs for [`is_probable_prime`].
#[derive(Debug, Clone, Copy)]
pub struct MillerRabinConfig {
    /// Number of random witness rounds (error probability <= 4^-rounds).
    pub rounds: u32,
}

impl Default for MillerRabinConfig {
    fn default() -> Self {
        // 4^-24 < 2^-48: ample for simulation-grade parameters.
        MillerRabinConfig { rounds: 24 }
    }
}

/// Miller–Rabin probabilistic primality test.
///
/// Always performs trial division by the small-prime table first; values below
/// 2^64 additionally use the deterministic witness set {2, 3, 5, 7, 11, 13,
/// 17, 19, 23, 29, 31, 37}, which is exact for that range.
pub fn is_probable_prime<R: Rng>(n: &BigUint, cfg: MillerRabinConfig, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = BigUint::from_u64(p);
        if *n == p {
            return true;
        }
        if (n % &p).is_zero() {
            return false;
        }
    }
    if n.is_even() {
        return false;
    }

    // n - 1 = d * 2^s with d odd
    let n_minus_1 = n - &BigUint::one();
    let s = n_minus_1.trailing_zeros();
    let d = n_minus_1.shr_bits(s);

    // One Montgomery context for the whole witness loop: every witness
    // exponentiation and every squaring shares the same (odd) modulus, so
    // hoisting the context keeps the entire test division-free instead of
    // rebuilding R^2 mod n per mod_pow call.
    let mont = crate::MontgomeryCtx::new(n).expect("n is odd and > 1 here");

    let witness_passes = |a: &BigUint| -> bool {
        let mut x = mont.mod_pow(a, &d);
        if x.is_one() || x == n_minus_1 {
            return true;
        }
        for _ in 0..s - 1 {
            x = mont.mod_mul(&x, &x);
            if x == n_minus_1 {
                return true;
            }
        }
        false
    };

    if n.bit_len() <= 64 {
        // Deterministic for u64 range.
        for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            let a = BigUint::from_u64(a);
            if a >= *n {
                continue;
            }
            if !witness_passes(&a) {
                return false;
            }
        }
        return true;
    }

    let two = BigUint::from_u64(2);
    let upper = n - &BigUint::from_u64(3); // witnesses drawn from [2, n-2]
    for _ in 0..cfg.rounds {
        let a = &random_below(&upper, rng) + &two;
        if !witness_passes(&a) {
            return false;
        }
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The top two bits are forced to 1 (so products of two such primes have
/// exactly `2*bits` bits) and the bottom bit is forced to 1.
///
/// # Panics
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = random_bits(bits, rng);
        candidate.set_bit(bits - 1);
        if bits >= 2 {
            candidate.set_bit(bits - 2);
        }
        candidate.set_bit(0);
        if is_probable_prime(&candidate, MillerRabinConfig::default(), rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xc0ffee)
    }

    #[test]
    fn small_values() {
        let mut r = rng();
        let cfg = MillerRabinConfig::default();
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 101, 1_000_000_007];
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 25, 100, 1_000_000_006];
        for p in primes {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), cfg, &mut r),
                "{p} should be prime"
            );
        }
        for c in composites {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), cfg, &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // 561, 1105, 1729, ... are Fermat pseudoprimes to many bases but
        // Miller–Rabin must reject them.
        let mut r = rng();
        let cfg = MillerRabinConfig::default();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), cfg, &mut r),
                "Carmichael number {c} must be rejected"
            );
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^89 - 1 is a Mersenne prime.
        let mut r = rng();
        let p = BigUint::from_u128((1u128 << 89) - 1);
        assert!(is_probable_prime(&p, MillerRabinConfig::default(), &mut r));
        // 2^101 - 1 is composite (7432339208719 divides it).
        let c = BigUint::from_u128((1u128 << 101) - 1);
        assert!(!is_probable_prime(&c, MillerRabinConfig::default(), &mut r));
    }

    #[test]
    fn gen_prime_has_requested_size() {
        let mut r = rng();
        for bits in [32usize, 64, 96, 128] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits, "bits = {bits}");
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, MillerRabinConfig::default(), &mut r));
        }
    }

    #[test]
    fn product_of_two_primes_has_double_size() {
        let mut r = rng();
        let p = gen_prime(96, &mut r);
        let q = gen_prime(96, &mut r);
        assert_eq!((&p * &q).bit_len(), 192);
    }
}
