//! Addition, subtraction, multiplication (schoolbook + Karatsuba) and bit
//! shifts for [`BigUint`].

use crate::BigUint;
use std::ops::{Add, Mul, Shl, Shr, Sub};

/// Limb count above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

pub(crate) fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &x) in long.iter().enumerate() {
        let y = short.get(i).copied().unwrap_or(0);
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a - b`; caller must guarantee `a >= b`.
pub(crate) fn sub_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(a.len() >= b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &x) in a.iter().enumerate() {
        let y = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = x.overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (b1 as u64) + (b2 as u64);
    }
    assert_eq!(borrow, 0, "BigUint subtraction underflow");
    out
}

fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let t = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().max(b.len()) / 2;
    let (a0, a1) = a.split_at(half.min(a.len()));
    let (b0, b1) = b.split_at(half.min(b.len()));

    let mut z0 = mul_karatsuba(a0, b0);
    let mut z2 = mul_karatsuba(a1, b1);
    trim(&mut z0);
    trim(&mut z2);
    let a01 = add_limbs(a0, a1);
    let b01 = add_limbs(b0, b1);
    let mut z1 = mul_karatsuba(&a01, &b01);
    // z1 = z1 - z0 - z2; both subtrahends are mathematically <= z1, and
    // `sub_limbs` accepts a shorter right operand.
    z1 = sub_limbs(&z1, &z0);
    trim(&mut z1);
    z1 = sub_limbs(&z1, &z2);
    trim(&mut z1);

    // result = z0 + z1 << (64*half) + z2 << (128*half)
    let mut out = vec![0u64; a.len() + b.len() + 1];
    accumulate(&mut out, &z0, 0);
    accumulate(&mut out, &z1, half);
    accumulate(&mut out, &z2, 2 * half);
    out
}

fn trim(v: &mut Vec<u64>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

/// `dst += src << (64*offset)`; `dst` must be large enough.
fn accumulate(dst: &mut [u64], src: &[u64], offset: usize) {
    let mut carry = 0u128;
    for (i, &s) in src.iter().enumerate() {
        let t = dst[offset + i] as u128 + s as u128 + carry;
        dst[offset + i] = t as u64;
        carry = t >> 64;
    }
    let mut k = offset + src.len();
    while carry != 0 {
        let t = dst[k] as u128 + carry;
        dst[k] = t as u64;
        carry = t >> 64;
        k += 1;
    }
}

impl BigUint {
    /// Multiplies by a single `u64`.
    pub fn mul_u64(&self, rhs: u64) -> BigUint {
        if rhs == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = (l as u128) * (rhs as u128) + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Checked subtraction; returns `None` when `rhs > self`.
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if self < rhs {
            None
        } else {
            Some(BigUint::from_limbs(sub_limbs(&self.limbs, &rhs.limbs)))
        }
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            let mut c = self.clone();
            c.normalize();
            return c;
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }
}

/// Implements an operator for all four owned/borrowed operand combinations
/// in terms of the `&T op &T` case.
macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$method(&rhs)
            }
        }
    };
}
pub(crate) use forward_binop;

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(add_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        assert!(self >= rhs, "BigUint subtraction underflow");
        BigUint::from_limbs(sub_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(mul_karatsuba(&self.limbs, &rhs.limbs))
    }
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn add_small() {
        assert_eq!(&b(2) + &b(3), b(5));
        assert_eq!(&b(0) + &b(7), b(7));
        assert_eq!(&b(u64::MAX as u128) + &b(1), b(1u128 << 64));
    }

    #[test]
    fn add_carry_chain() {
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let one = BigUint::one();
        let sum = &a + &one;
        assert_eq!(sum.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn sub_small() {
        assert_eq!(&b(5) - &b(3), b(2));
        assert_eq!(&b(1u128 << 64) - &b(1), b(u64::MAX as u128));
        assert!(b(3).checked_sub(&b(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &b(3) - &b(5);
    }

    #[test]
    fn mul_small() {
        assert_eq!(&b(6) * &b(7), b(42));
        assert_eq!(&b(0) * &b(7), b(0));
        let big = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(&b(u64::MAX as u128) * &b(u64::MAX as u128), b(big));
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = BigUint::from_limbs(vec![0x1234_5678, u64::MAX, 42]);
        assert_eq!(a.mul_u64(97), &a * &BigUint::from_u64(97));
        assert_eq!(a.mul_u64(0), BigUint::zero());
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands large enough to trigger the Karatsuba path.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..80u64 {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(i);
            limbs_a.push(x);
            x = x.rotate_left(17) ^ i;
            limbs_b.push(x);
        }
        let a = BigUint::from_limbs(limbs_a.clone());
        let bb = BigUint::from_limbs(limbs_b.clone());
        let fast = &a * &bb;
        let slow = BigUint::from_limbs(super::mul_schoolbook(&limbs_a, &limbs_b));
        assert_eq!(fast, slow);
    }

    #[test]
    fn shifts() {
        assert_eq!(b(1).shl_bits(64).limbs(), &[0, 1]);
        assert_eq!(b(1u128 << 64).shr_bits(64), b(1));
        assert_eq!(b(0b1011).shl_bits(3), b(0b1011000));
        assert_eq!(b(0b1011000).shr_bits(3), b(0b1011));
        assert_eq!(b(5).shr_bits(400), b(0));
        let v = b(0xdead_beef_cafe_babe);
        assert_eq!(v.shl_bits(93).shr_bits(93), v);
    }
}
