//! # sla-bigint
//!
//! Arbitrary-precision **unsigned** integer arithmetic built from scratch for
//! the secure location-alert stack. The composite-order bilinear group used
//! by Hidden Vector Encryption (Boneh–Waters 2007) works modulo `N = P · Q`
//! where `P`, `Q` are large primes; this crate supplies everything that
//! substrate needs:
//!
//! * [`BigUint`] — little-endian 64-bit limb representation with full
//!   comparison, arithmetic (`+`, `-`, `*`, `/`, `%`, shifts) and radix
//!   conversion (hex / decimal).
//! * Modular arithmetic — [`BigUint::mod_add`], [`BigUint::mod_sub`],
//!   [`BigUint::mod_mul`], [`BigUint::mod_pow`], [`BigUint::mod_inverse`],
//!   [`BigUint::gcd`].
//! * Division-free reduction — [`MontgomeryCtx`] (odd moduli, CIOS passes
//!   in the `x·R mod N` domain) and [`BarrettCtx`] (any modulus, reduction
//!   by a precomputed `µ = ⌊b^{2k}/N⌋`), unified behind the **total**
//!   [`Reducer`] dispatch that [`BigUint::mod_pow`] always goes through —
//!   no modulus falls back to per-step division.
//! * Fixed-base exponentiation — [`FixedBaseTable`] precomputes radix-2^w
//!   power tables for one base so repeated `base^e mod N` costs only
//!   `⌈bits/w⌉` domain products, no squarings.
//! * Primality — Miller–Rabin testing ([`is_probable_prime`]) and random
//!   prime generation ([`gen_prime`]).
//! * Random sampling — [`random_below`], [`random_bits`].
//!
//! Montgomery multiplication additionally dispatches through runtime-
//! detected kernels ([`KernelKind`]; AVX2 digit kernels on x86-64, NEON
//! on aarch64, a portable u128 lockstep path everywhere) with the
//! scalar CIOS loop kept as the always-available oracle: batches of
//! independent products ([`MontgomeryCtx::mont_mul_batch`]) advance
//! eight (then four) elements in lockstep, and batch exponentiation
//! ([`Reducer::mod_pow_batch`], [`FixedBaseTable::pow_batch`]) runs N
//! windowed ladders on a shared fixed-window schedule so every squaring
//! and table product is one lockstep sweep. Single products stay on the
//! scalar loop unless the `SLA_SIMD` environment variable
//! (`auto|scalar|portable|avx2|neon`) forces a kernel.
//!
//! The crate is `#![deny(unsafe_code)]` — the sole sanctioned exception
//! is the `std::arch` intrinsics inside the kernel module — and
//! deterministic given a seeded RNG, which the experiment harness
//! relies on for reproducibility.
//!
//! ## Example
//!
//! ```
//! use sla_bigint::BigUint;
//!
//! let a = BigUint::from_u64(1 << 40);
//! let b = BigUint::from_decimal_str("123456789012345678901234567890").unwrap();
//! let n = BigUint::from_u64(97);
//! assert_eq!((&a * &b) % &n, (&b % &n * &(a % &n)) % &n);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod barrett;
mod biguint;
mod div;
mod fixed_base;
mod kernels;
mod modular;
mod montgomery;
mod pow;
mod prime;
mod random;
mod reducer;

pub use barrett::BarrettCtx;
pub use biguint::{BigUint, ParseBigUintError};
pub use fixed_base::FixedBaseTable;
pub use kernels::KernelKind;
pub use montgomery::MontgomeryCtx;
pub use prime::{gen_prime, is_probable_prime, MillerRabinConfig};
pub use random::{random_below, random_bits, random_nonzero_below};
pub use reducer::Reducer;
