//! Property test: HVE evaluation must agree with plaintext pattern
//! semantics for random widths, attributes and patterns.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_hve::{AttributeVector, HveScheme, SearchPattern};
use sla_pairing::{BilinearGroup, SimulatedGroup};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn hve_agrees_with_plaintext_semantics(
        seed in any::<u64>(),
        bits in prop::collection::vec(any::<bool>(), 1..10),
        flips in prop::collection::vec(0usize..10, 0..4),
        star_mask in prop::collection::vec(any::<bool>(), 1..10),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = bits.len();
        let grp = SimulatedGroup::generate(32, &mut rng);
        let scheme = HveScheme::new(&grp, width);
        let (pk, sk) = scheme.setup(&mut rng);

        let index = AttributeVector::from_bits(&bits);
        let msg = scheme.encode_message(99);
        let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);

        // Derive a pattern from the attribute: star out some positions,
        // then flip some of the remaining bits.
        let mut symbols: Vec<Option<bool>> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if *star_mask.get(i % star_mask.len()).unwrap_or(&false) {
                    None
                } else {
                    Some(b)
                }
            })
            .collect();
        for f in &flips {
            let i = f % width;
            if let Some(b) = symbols[i] {
                symbols[i] = Some(!b);
            }
        }
        let pattern = SearchPattern::from_symbols(&symbols);
        let tk = scheme.gen_token(&sk, &pattern, &mut rng);

        let expected = pattern.matches(&index);
        let got = scheme.query_decode(&tk, &ct) == Some(99);
        prop_assert_eq!(got, expected, "index {} pattern {}", index, pattern);

        // Cost formula always holds.
        let before = grp.counters().snapshot();
        let _ = scheme.query(&tk, &ct);
        let delta = grp.counters().snapshot() - before;
        prop_assert_eq!(delta.pairings, tk.pairing_cost());
    }
}
