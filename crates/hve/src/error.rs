//! Typed errors for the fallible HVE entry points.

use crate::scheme::MESSAGE_DOMAIN_BITS;
use std::fmt;

/// Why an HVE operation could not be performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HveError {
    /// The scheme width `l` must be positive.
    ZeroWidth,
    /// An attribute, pattern, ciphertext or key does not have the
    /// scheme's width.
    WidthMismatch {
        /// The scheme's configured width `l`.
        expected: usize,
        /// The width of the offending input.
        actual: usize,
    },
    /// A message identifier lies outside the valid domain
    /// `[0, 2^MESSAGE_DOMAIN_BITS)`.
    MessageOutOfDomain {
        /// The offending identifier.
        id: u64,
    },
}

impl fmt::Display for HveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HveError::ZeroWidth => write!(f, "HVE width must be positive"),
            HveError::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "width mismatch: scheme width {expected}, input width {actual}"
                )
            }
            HveError::MessageOutOfDomain { id } => write!(
                f,
                "message id {id} outside the valid domain [0, 2^{MESSAGE_DOMAIN_BITS})"
            ),
        }
    }
}

impl std::error::Error for HveError {}
