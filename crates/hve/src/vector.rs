//! Attribute vectors (`{0,1}^l`) and search patterns (`{0,1,*}^l`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error for textual vector/pattern parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVectorError {
    /// The character that was neither `0`, `1` nor `*`.
    pub bad_char: char,
}

impl fmt::Display for ParseVectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid vector character {:?}", self.bad_char)
    }
}

impl std::error::Error for ParseVectorError {}

/// A binary attribute vector `I ∈ {0,1}^l` — the encrypted "index" of a
/// ciphertext (in the alert protocol: the user's padded cell index).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttributeVector(Vec<bool>);

impl AttributeVector {
    /// Builds from a bit slice.
    pub fn from_bits(bits: &[bool]) -> Self {
        AttributeVector(bits.to_vec())
    }

    /// Vector width `l`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the width is zero.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Bit at position `i` (0-based, most significant first by convention).
    pub fn bit(&self, i: usize) -> bool {
        self.0[i]
    }

    /// Iterates over bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.0.iter().copied()
    }
}

impl fmt::Display for AttributeVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            f.write_str(if *b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl std::str::FromStr for AttributeVector {
    type Err = ParseVectorError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(ParseVectorError { bad_char: other }),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(AttributeVector)
    }
}

/// A search pattern `I* ∈ {0,1,*}^l`; `None` encodes the wildcard `*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchPattern(Vec<Option<bool>>);

impl SearchPattern {
    /// Builds from raw symbols.
    pub fn from_symbols(symbols: &[Option<bool>]) -> Self {
        SearchPattern(symbols.to_vec())
    }

    /// A pattern of `len` wildcards (matches everything).
    pub fn all_stars(len: usize) -> Self {
        SearchPattern(vec![None; len])
    }

    /// Pattern width `l`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the width is zero.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Symbol at position `i`.
    pub fn symbol(&self, i: usize) -> Option<bool> {
        self.0[i]
    }

    /// Indices of the non-star positions — the set `J` of the paper; its
    /// size drives the pairing cost `1 + 2·|J|`.
    pub fn non_star_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect()
    }

    /// Number of non-star symbols.
    pub fn non_star_count(&self) -> usize {
        self.0.iter().filter(|s| s.is_some()).count()
    }

    /// Plaintext match semantics: every non-star symbol must equal the
    /// attribute bit (used as the specification oracle in tests; the HVE
    /// evaluation must agree with this on every input).
    pub fn matches(&self, attr: &AttributeVector) -> bool {
        self.0.len() == attr.len()
            && self
                .0
                .iter()
                .zip(attr.iter())
                .all(|(pat, bit)| pat.is_none_or(|p| p == bit))
    }

    /// Iterates over symbols.
    pub fn iter(&self) -> impl Iterator<Item = Option<bool>> + '_ {
        self.0.iter().copied()
    }
}

impl fmt::Display for SearchPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.0 {
            f.write_str(match s {
                Some(true) => "1",
                Some(false) => "0",
                None => "*",
            })?;
        }
        Ok(())
    }
}

impl std::str::FromStr for SearchPattern {
    type Err = ParseVectorError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars()
            .map(|c| match c {
                '0' => Ok(Some(false)),
                '1' => Ok(Some(true)),
                '*' => Ok(None),
                other => Err(ParseVectorError { bad_char: other }),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(SearchPattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let a: AttributeVector = "1011".parse().unwrap();
        assert_eq!(a.to_string(), "1011");
        let p: SearchPattern = "1*0*".parse().unwrap();
        assert_eq!(p.to_string(), "1*0*");
        assert!("10x".parse::<AttributeVector>().is_err());
        assert!("1*x".parse::<SearchPattern>().is_err());
    }

    #[test]
    fn match_semantics() {
        let attr: AttributeVector = "110".parse().unwrap();
        assert!("110".parse::<SearchPattern>().unwrap().matches(&attr));
        assert!("1**".parse::<SearchPattern>().unwrap().matches(&attr));
        assert!("***".parse::<SearchPattern>().unwrap().matches(&attr));
        assert!(!"100".parse::<SearchPattern>().unwrap().matches(&attr));
        assert!(!"*00".parse::<SearchPattern>().unwrap().matches(&attr));
        // width mismatch never matches
        assert!(!"11".parse::<SearchPattern>().unwrap().matches(&attr));
    }

    #[test]
    fn paper_fig1_example() {
        // §2.2: token *00 matches user B (000) but not user A (110).
        let token: SearchPattern = "*00".parse().unwrap();
        assert!(token.matches(&"000".parse().unwrap()));
        assert!(!token.matches(&"110".parse().unwrap()));
        assert_eq!(token.non_star_count(), 2);
        assert_eq!(token.non_star_positions(), vec![1, 2]);
    }

    #[test]
    fn star_accounting() {
        let p: SearchPattern = "**1*0".parse().unwrap();
        assert_eq!(p.non_star_count(), 2);
        assert_eq!(p.non_star_positions(), vec![2, 4]);
        let all = SearchPattern::all_stars(4);
        assert_eq!(all.non_star_count(), 0);
        assert!(all.matches(&"1010".parse().unwrap()));
    }
}
