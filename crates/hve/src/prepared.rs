//! Prepared key material: fixed-base tables over the HVE keys.
//!
//! Every Encrypt exponentiates the *same* public-key bases (`V`, `A`,
//! `H_i`, `W_i`) and every GenToken the same secret-key bases (`g`, `v`,
//! `h_i`, `w_i`) — only the exponents change. Wrapping a key once with
//! [`HveScheme::prepare_public_key`](crate::HveScheme::prepare_public_key) /
//! [`HveScheme::prepare_secret_key`](crate::HveScheme::prepare_secret_key)
//! builds a [`PreparedG`]/[`PreparedGt`] fixed-base table per base, after
//! which `encrypt_prepared`/`gen_token_prepared` reuse the precomputation
//! across every ciphertext and token in a batch.
//!
//! The prepared paths perform **exactly the same metered operations** as
//! the plain ones (the `u_i·h_i` combination for set bits is still a
//! counted `mul_g` per call), draw randomness in the same order, and
//! produce bit-identical ciphertexts/tokens — only the wall-clock cost of
//! each exponentiation drops.

use crate::keys::{PublicKey, SecretKey};
use sla_pairing::{PreparedG, PreparedGt};

/// A [`PublicKey`] plus per-base fixed-base tables for the Encrypt phase.
#[derive(Debug, Clone)]
pub struct PreparedPublicKey {
    pub(crate) pk: PublicKey,
    /// Table over `V` (the `C_0` base).
    pub(crate) v: PreparedG,
    /// Table over `A = e(g,v)^a` (the `C'` base).
    pub(crate) a: PreparedGt,
    /// Tables over each `H_i` (the `C_{i,1}` base for clear bits).
    pub(crate) h: Vec<PreparedG>,
    /// Tables over each `W_i` (the `C_{i,2}` base).
    pub(crate) w: Vec<PreparedG>,
}

impl PreparedPublicKey {
    /// The underlying public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// HVE width `l`.
    pub fn width(&self) -> usize {
        self.pk.width()
    }
}

/// A [`SecretKey`] plus per-base fixed-base tables for the GenToken phase.
#[derive(Debug, Clone)]
pub struct PreparedSecretKey {
    pub(crate) sk: SecretKey,
    /// Table over `g` (the `g^a` factor of `K_0`).
    pub(crate) g: PreparedG,
    /// Table over `v` (the `K_{i,1}`/`K_{i,2}` base).
    pub(crate) v: PreparedG,
    /// Tables over each `h_i`.
    pub(crate) h: Vec<PreparedG>,
    /// Tables over each `w_i`.
    pub(crate) w: Vec<PreparedG>,
}

impl PreparedSecretKey {
    /// The underlying secret key.
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// HVE width `l`.
    pub fn width(&self) -> usize {
        self.sk.width()
    }
}
