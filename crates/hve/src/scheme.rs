//! The four HVE phases: Setup, Encrypt, GenToken, Query (§2.1 of the
//! paper, following Boneh–Waters TCC 2007).

use crate::error::HveError;
use crate::keys::{Ciphertext, PublicKey, SecretKey, Token};
use crate::prepared::{PreparedPublicKey, PreparedSecretKey};
use crate::vector::{AttributeVector, SearchPattern};
use rand::Rng;
use sla_bigint::BigUint;
use sla_pairing::{BilinearGroup, GElem, GtElem, PreparedG};

/// Bit size of the valid message domain used by
/// [`HveScheme::encode_message`] / [`HveScheme::decode_message`].
///
/// A query that does not match returns a `GT` element uniformly distributed
/// in a subgroup of order ≈ `N`; the probability that it accidentally lands
/// inside the `2^MESSAGE_DOMAIN_BITS`-element valid domain is negligible
/// (≈ `2^{32}/N`). This realizes the paper's "special number ⊥ not in the
/// valid message domain".
pub const MESSAGE_DOMAIN_BITS: u32 = 32;

/// Ciphertexts per lockstep chunk in [`HveScheme::query_many`].
///
/// Each chunk flattens `BATCH_CHUNK · (1 + 2·|J|)` pairings into one
/// [`BilinearGroup::pair_batch`] call — large enough to keep the SIMD
/// batch kernels saturated (the lockstep width is 4), small enough that
/// the pair scratch list and the chunk's `GT` outputs stay cache-resident.
const BATCH_CHUNK: usize = 16;

/// HVE scheme bound to a bilinear group engine and a fixed width `l`.
#[derive(Debug, Clone, Copy)]
pub struct HveScheme<'g, G: BilinearGroup> {
    group: &'g G,
    width: usize,
}

impl<'g, G: BilinearGroup> HveScheme<'g, G> {
    /// Creates a scheme of width `l` (attribute bit length) over `group`.
    ///
    /// # Panics
    /// Panics if `width == 0`; use [`Self::try_new`] for a fallible
    /// version.
    pub fn new(group: &'g G, width: usize) -> Self {
        Self::try_new(group, width).expect("HVE width must be positive")
    }

    /// Fallible [`Self::new`]: `Err(HveError::ZeroWidth)` when
    /// `width == 0`.
    pub fn try_new(group: &'g G, width: usize) -> Result<Self, HveError> {
        if width == 0 {
            return Err(HveError::ZeroWidth);
        }
        Ok(HveScheme { group, width })
    }

    /// The configured width `l`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The underlying group engine.
    pub fn group(&self) -> &'g G {
        self.group
    }

    /// **Setup** — generates the `(PK, SK)` pair.
    ///
    /// `SK = (g_q, a ∈ Z_p, ∀i: u_i, h_i, w_i, g, v ∈ G_p)`;
    /// `PK = (g_q, V = v·R_v, A = e(g,v)^a, ∀i: U_i = u_i·R_{u,i},
    /// H_i = h_i·R_{h,i}, W_i = w_i·R_{w,i})` with `R ∈ G_q`.
    pub fn setup<R: Rng>(&self, rng: &mut R) -> (PublicKey, SecretKey) {
        let grp = self.group;
        let l = self.width;

        let a = grp.random_zp(rng);
        let g = grp.random_gp(rng);
        let v = grp.random_gp(rng);
        let gq = grp.random_gq(rng);

        let u: Vec<_> = (0..l).map(|_| grp.random_gp(rng)).collect();
        let h: Vec<_> = (0..l).map(|_| grp.random_gp(rng)).collect();
        let w: Vec<_> = (0..l).map(|_| grp.random_gp(rng)).collect();

        let blind = |x: &sla_pairing::GElem, rng: &mut R| {
            let r = grp.random_gq(rng);
            grp.mul_g(x, &r)
        };

        let v_pub = blind(&v, rng);
        let a_pub = grp.pow_gt(&grp.pair(&g, &v), &a);
        let u_pub: Vec<_> = u.iter().map(|x| blind(x, rng)).collect();
        let h_pub: Vec<_> = h.iter().map(|x| blind(x, rng)).collect();
        let w_pub: Vec<_> = w.iter().map(|x| blind(x, rng)).collect();

        (
            PublicKey {
                width: l,
                gq: gq.clone(),
                v: v_pub,
                a: a_pub,
                u: u_pub,
                h: h_pub,
                w: w_pub,
            },
            SecretKey {
                width: l,
                a,
                g,
                v,
                gq,
                u,
                h,
                w,
            },
        )
    }

    /// **Encrypt** — produces a ciphertext for message `M` under attribute
    /// vector `I`:
    /// `C' = M·A^s`, `C_0 = V^s·Z`,
    /// `C_{i,1} = (U_i^{I_i}·H_i)^s·Z_{i,1}`, `C_{i,2} = W_i^s·Z_{i,2}`.
    ///
    /// # Panics
    /// Panics if `index.len() != width`.
    pub fn encrypt<R: Rng>(
        &self,
        pk: &PublicKey,
        index: &AttributeVector,
        message: &GtElem,
        rng: &mut R,
    ) -> Ciphertext {
        self.encrypt_impl(EncKey::Plain(pk), index, message, rng)
    }

    /// [`Self::encrypt`] through a [`PreparedPublicKey`]: the same metered
    /// operations, randomness order and output bytes, with every
    /// exponentiation served from the key's fixed-base tables.
    ///
    /// # Panics
    /// Panics if `index.len() != width`.
    pub fn encrypt_prepared<R: Rng>(
        &self,
        ppk: &PreparedPublicKey,
        index: &AttributeVector,
        message: &GtElem,
        rng: &mut R,
    ) -> Ciphertext {
        self.encrypt_impl(EncKey::Prepared(ppk), index, message, rng)
    }

    /// [`Self::encrypt_prepared`] over a batch of `(index, message)`
    /// items sharing one key and one RNG: ciphertext `j` is
    /// **byte-identical** to the `j`-th of `items.len()` serial
    /// `encrypt_prepared` calls against the same RNG, and every counter
    /// total advances exactly as the serial loop would.
    ///
    /// The speedup mechanism is *lockstep exponentiation*: randomness is
    /// drawn first, item by item in the exact serial order, then the
    /// exponentiations are regrouped by base role (`A^s`, `V^s`, the
    /// per-position `C_{i,1}`/`C_{i,2}` powers) and handed to the
    /// engine's batch-pow entry points, which drive 4/8 ladders per
    /// instruction through the SIMD kernels. The cheap `mul_g`/`mul_gt`
    /// folds replay serially per item afterwards.
    ///
    /// # Panics
    /// Panics if any index's length differs from the scheme width.
    pub fn encrypt_prepared_batch<R: Rng>(
        &self,
        ppk: &PreparedPublicKey,
        items: &[(&AttributeVector, &GtElem)],
        rng: &mut R,
    ) -> Vec<Ciphertext> {
        // Lockstep batching only wins when each exponentiation is
        // genuinely expensive (a forced vector kernel): under auto
        // dispatch the engine's single ops are already the fastest
        // schedule and the gather/scatter bookkeeping below would cost
        // more than it amortizes, so take the serial loop — the outputs
        // and counter totals are identical either way.
        if !self.group.prefers_batched_pow() {
            return items
                .iter()
                .map(|(index, message)| self.encrypt_prepared(ppk, index, message, rng))
                .collect();
        }
        let grp = self.group;
        let l = self.width;

        // Phase 1 — randomness, in the exact per-item serial draw order
        // (s, Z, then Z_{i,1}, Z_{i,2} per position).
        struct Draws {
            s: BigUint,
            z: GElem,
            zi: Vec<(GElem, GElem)>,
        }
        let draws: Vec<Draws> = items
            .iter()
            .map(|(index, _)| {
                assert_eq!(index.len(), l, "attribute width mismatch");
                let s = grp.random_zn(rng);
                let z = grp.random_gq(rng);
                let zi = (0..l)
                    .map(|_| (grp.random_gq(rng), grp.random_gq(rng)))
                    .collect();
                Draws { s, z, zi }
            })
            .collect();

        // Phase 2 — exponentiations, regrouped by base role into lockstep
        // sweeps. Set-bit positions first pay their metered `U_i·H_i`
        // product (exactly one `mul_g` per set bit, like the serial path)
        // and ride the ad-hoc-base sweep; everything else exponentiates
        // straight off the key's fixed-base tables.
        let a_items: Vec<_> = draws.iter().map(|d| (&ppk.a, &d.s)).collect();
        let a_s = grp.pow_prepared_gt_batch(&a_items);
        let v_items: Vec<_> = draws.iter().map(|d| (&ppk.v, &d.s)).collect();
        let v_s = grp.pow_prepared_g_batch(&v_items);

        let mut adhoc_bases: Vec<GElem> = Vec::new();
        let mut adhoc_slots: Vec<(usize, usize)> = Vec::new(); // (item, i)
        let mut prep_items: Vec<(&PreparedG, &BigUint)> = Vec::new();
        let mut prep_slots: Vec<(usize, usize, bool)> = Vec::new(); // (item, i, is_c1)
        for (j, (index, _)) in items.iter().enumerate() {
            for i in 0..l {
                if index.bit(i) {
                    adhoc_bases.push(grp.mul_g(&ppk.pk.u[i], &ppk.pk.h[i]));
                    adhoc_slots.push((j, i));
                } else {
                    prep_items.push((&ppk.h[i], &draws[j].s));
                    prep_slots.push((j, i, true));
                }
                prep_items.push((&ppk.w[i], &draws[j].s));
                prep_slots.push((j, i, false));
            }
        }
        let adhoc_items: Vec<(&GElem, &BigUint)> = adhoc_slots
            .iter()
            .zip(&adhoc_bases)
            .map(|(&(j, _), b)| (b, &draws[j].s))
            .collect();
        let adhoc_pows = grp.pow_g_batch(&adhoc_items);
        let prep_pows = grp.pow_prepared_g_batch(&prep_items);

        let mut c1: Vec<Vec<Option<GElem>>> = items.iter().map(|_| vec![None; l]).collect();
        let mut c2: Vec<Vec<Option<GElem>>> = items.iter().map(|_| vec![None; l]).collect();
        for (&(j, i), p) in adhoc_slots.iter().zip(adhoc_pows) {
            c1[j][i] = Some(p);
        }
        for (&(j, i, is_c1), p) in prep_slots.iter().zip(prep_pows) {
            if is_c1 {
                c1[j][i] = Some(p);
            } else {
                c2[j][i] = Some(p);
            }
        }

        // Phase 3 — per-item assembly (cheap metered folds, serial order).
        items
            .iter()
            .enumerate()
            .map(|(j, (_, message))| {
                let d = &draws[j];
                let c_prime = grp.mul_gt(message, &a_s[j]);
                let c0 = grp.mul_g(&v_s[j], &d.z);
                let c = (0..l)
                    .map(|i| {
                        let (z1, z2) = &d.zi[i];
                        let p1 = c1[j][i].take().expect("every C_{i,1} lane resolved");
                        let p2 = c2[j][i].take().expect("every C_{i,2} lane resolved");
                        (grp.mul_g(&p1, z1), grp.mul_g(&p2, z2))
                    })
                    .collect();
                Ciphertext { c_prime, c0, c }
            })
            .collect()
    }

    /// Builds the per-base fixed-base tables for `pk` (once per key; every
    /// subsequent [`Self::encrypt_prepared`] reuses them).
    ///
    /// # Panics
    /// Panics if `pk.width() != width`.
    pub fn prepare_public_key(&self, pk: &PublicKey) -> PreparedPublicKey {
        assert_eq!(pk.width, self.width, "public key width mismatch");
        let grp = self.group;
        PreparedPublicKey {
            pk: pk.clone(),
            v: grp.prepare_g(&pk.v),
            a: grp.prepare_gt(&pk.a),
            h: pk.h.iter().map(|x| grp.prepare_g(x)).collect(),
            w: pk.w.iter().map(|x| grp.prepare_g(x)).collect(),
        }
    }

    /// Builds the per-base fixed-base tables for `sk` (once per key; every
    /// subsequent [`Self::gen_token_prepared`] reuses them).
    ///
    /// # Panics
    /// Panics if `sk.width() != width`.
    pub fn prepare_secret_key(&self, sk: &SecretKey) -> PreparedSecretKey {
        assert_eq!(sk.width, self.width, "secret key width mismatch");
        let grp = self.group;
        PreparedSecretKey {
            sk: sk.clone(),
            g: grp.prepare_g(&sk.g),
            v: grp.prepare_g(&sk.v),
            h: sk.h.iter().map(|x| grp.prepare_g(x)).collect(),
            w: sk.w.iter().map(|x| grp.prepare_g(x)).collect(),
        }
    }

    /// Shared Encrypt body: the plain and prepared entry points differ
    /// only in how the fixed bases are exponentiated, so their operation
    /// counts, RNG draws and outputs are identical by construction.
    fn encrypt_impl<R: Rng>(
        &self,
        key: EncKey<'_>,
        index: &AttributeVector,
        message: &GtElem,
        rng: &mut R,
    ) -> Ciphertext {
        assert_eq!(index.len(), self.width, "attribute width mismatch");
        let grp = self.group;
        let pk = key.pk();
        let s = grp.random_zn(rng);

        let a_s = key.pow_a(grp, &s);
        let c_prime = grp.mul_gt(message, &a_s);

        let z = grp.random_gq(rng);
        let c0 = grp.mul_g(&key.pow_v(grp, &s), &z);

        let mut c = Vec::with_capacity(self.width);
        for i in 0..self.width {
            // U_i^{I_i}·H_i: multiply by U_i only when the bit is set (a
            // metered mul_g either way, so prepared runs count the same).
            let c1_pow = if index.bit(i) {
                let base = grp.mul_g(&pk.u[i], &pk.h[i]);
                grp.pow_g(&base, &s)
            } else {
                key.pow_h(grp, i, &s)
            };
            let z1 = grp.random_gq(rng);
            let z2 = grp.random_gq(rng);
            let ci1 = grp.mul_g(&c1_pow, &z1);
            let ci2 = grp.mul_g(&key.pow_w(grp, i, &s), &z2);
            c.push((ci1, ci2));
        }

        Ciphertext { c_prime, c0, c }
    }

    /// **GenToken** — derives the search token for pattern `I*`:
    /// `K_0 = g^a · Π_{i∈J} (u_i^{I*_i}·h_i)^{r_{i,1}} · w_i^{r_{i,2}}`,
    /// `K_{i,1} = v^{r_{i,1}}`, `K_{i,2} = v^{r_{i,2}}` for `i ∈ J`.
    ///
    /// # Panics
    /// Panics if `pattern.len() != width`.
    pub fn gen_token<R: Rng>(&self, sk: &SecretKey, pattern: &SearchPattern, rng: &mut R) -> Token {
        self.gen_token_impl(TokKey::Plain(sk), pattern, rng)
    }

    /// [`Self::gen_token`] through a [`PreparedSecretKey`]: the same
    /// metered operations, randomness order and output bytes, with every
    /// exponentiation served from the key's fixed-base tables.
    ///
    /// # Panics
    /// Panics if `pattern.len() != width`.
    pub fn gen_token_prepared<R: Rng>(
        &self,
        psk: &PreparedSecretKey,
        pattern: &SearchPattern,
        rng: &mut R,
    ) -> Token {
        self.gen_token_impl(TokKey::Prepared(psk), pattern, rng)
    }

    /// [`Self::gen_token_prepared`] over a batch of patterns sharing one
    /// key and one RNG: token `j` is **byte-identical** to the `j`-th of
    /// `patterns.len()` serial `gen_token_prepared` calls against the
    /// same RNG, with identical counter totals — the lockstep analogue
    /// of [`Self::encrypt_prepared_batch`] for the GenToken phase.
    ///
    /// # Panics
    /// Panics if any pattern's length differs from the scheme width.
    pub fn gen_token_prepared_batch<R: Rng>(
        &self,
        psk: &PreparedSecretKey,
        patterns: &[&SearchPattern],
        rng: &mut R,
    ) -> Vec<Token> {
        // Same dispatch hint as `encrypt_prepared_batch`: the lockstep
        // regrouping only amortizes under a forced vector kernel.
        if !self.group.prefers_batched_pow() {
            return patterns
                .iter()
                .map(|pat| self.gen_token_prepared(psk, pat, rng))
                .collect();
        }
        let grp = self.group;
        let sk = &psk.sk;

        // Phase 1 — randomness, item by item in serial draw order
        // (r_{i,1}, r_{i,2} per non-star position).
        let draws: Vec<Vec<(BigUint, BigUint)>> = patterns
            .iter()
            .map(|pat| {
                assert_eq!(pat.len(), self.width, "pattern width mismatch");
                pat.non_star_positions()
                    .into_iter()
                    .map(|_| (grp.random_zp(rng), grp.random_zp(rng)))
                    .collect()
            })
            .collect();

        // Phase 2 — exponentiations regrouped into lockstep sweeps: the
        // g^a seed, the ad-hoc `u_i·h_i` bases for set bits (metered
        // product per position, like serial), and one prepared-base sweep
        // covering clear-bit bases, every w_i power and both v powers.
        let g_items: Vec<_> = patterns.iter().map(|_| (&psk.g, &sk.a)).collect();
        let k0_seeds = grp.pow_prepared_g_batch(&g_items);

        const BASE: u8 = 0;
        const W: u8 = 1;
        const V1: u8 = 2;
        const V2: u8 = 3;
        let mut adhoc_bases: Vec<GElem> = Vec::new();
        let mut adhoc_slots: Vec<(usize, usize)> = Vec::new(); // (item, pos)
        let mut prep_items: Vec<(&PreparedG, &BigUint)> = Vec::new();
        let mut prep_slots: Vec<(usize, usize, u8)> = Vec::new(); // (item, pos, role)
        for (j, pat) in patterns.iter().enumerate() {
            for (pos, i) in pat.non_star_positions().into_iter().enumerate() {
                let bit = pat.symbol(i).expect("non-star position");
                let (r1, r2) = &draws[j][pos];
                if bit {
                    adhoc_bases.push(grp.mul_g(&sk.u[i], &sk.h[i]));
                    adhoc_slots.push((j, pos));
                } else {
                    prep_items.push((&psk.h[i], r1));
                    prep_slots.push((j, pos, BASE));
                }
                prep_items.push((&psk.w[i], r2));
                prep_slots.push((j, pos, W));
                prep_items.push((&psk.v, r1));
                prep_slots.push((j, pos, V1));
                prep_items.push((&psk.v, r2));
                prep_slots.push((j, pos, V2));
            }
        }
        let adhoc_items: Vec<(&GElem, &BigUint)> = adhoc_slots
            .iter()
            .zip(&adhoc_bases)
            .map(|(&(j, pos), b)| (b, &draws[j][pos].0))
            .collect();
        let adhoc_pows = grp.pow_g_batch(&adhoc_items);
        let prep_pows = grp.pow_prepared_g_batch(&prep_items);

        // (base_pow, w_pow, v^{r1}, v^{r2}) per non-star position.
        let mut grid: Vec<Vec<[Option<GElem>; 4]>> = patterns
            .iter()
            .map(|pat| {
                (0..pat.non_star_count())
                    .map(|_| [None, None, None, None])
                    .collect()
            })
            .collect();
        for (&(j, pos), p) in adhoc_slots.iter().zip(adhoc_pows) {
            grid[j][pos][BASE as usize] = Some(p);
        }
        for (&(j, pos, role), p) in prep_slots.iter().zip(prep_pows) {
            grid[j][pos][role as usize] = Some(p);
        }

        // Phase 3 — per-token K_0 folds (serial order, metered mul_g).
        patterns
            .iter()
            .zip(k0_seeds)
            .enumerate()
            .map(|(j, (pat, seed))| {
                let mut k0 = seed;
                let mut k = Vec::with_capacity(pat.non_star_count());
                for (pos, i) in pat.non_star_positions().into_iter().enumerate() {
                    let slot = &mut grid[j][pos];
                    let base_pow = slot[BASE as usize].take().expect("base lane resolved");
                    k0 = grp.mul_g(&k0, &base_pow);
                    let w_pow = slot[W as usize].take().expect("w lane resolved");
                    k0 = grp.mul_g(&k0, &w_pow);
                    k.push((
                        i,
                        slot[V1 as usize].take().expect("v1 lane resolved"),
                        slot[V2 as usize].take().expect("v2 lane resolved"),
                    ));
                }
                Token {
                    pattern: (*pat).clone(),
                    k0,
                    k,
                }
            })
            .collect()
    }

    /// Shared GenToken body (see [`Self::encrypt_impl`]).
    fn gen_token_impl<R: Rng>(
        &self,
        key: TokKey<'_>,
        pattern: &SearchPattern,
        rng: &mut R,
    ) -> Token {
        assert_eq!(pattern.len(), self.width, "pattern width mismatch");
        let grp = self.group;
        let sk = key.sk();

        let mut k0 = key.pow_gen(grp, &sk.a);
        let mut k = Vec::with_capacity(pattern.non_star_count());

        for i in pattern.non_star_positions() {
            let bit = pattern.symbol(i).expect("non-star position");
            let r1 = grp.random_zp(rng);
            let r2 = grp.random_zp(rng);

            let base_pow = if bit {
                let base = grp.mul_g(&sk.u[i], &sk.h[i]);
                grp.pow_g(&base, &r1)
            } else {
                key.pow_h(grp, i, &r1)
            };
            k0 = grp.mul_g(&k0, &base_pow);
            k0 = grp.mul_g(&k0, &key.pow_w(grp, i, &r2));

            k.push((i, key.pow_v(grp, &r1), key.pow_v(grp, &r2)));
        }

        Token {
            pattern: pattern.clone(),
            k0,
            k,
        }
    }

    /// **Query** — evaluates a token against a ciphertext, returning the
    /// candidate message
    /// `M = C' / ( e(C_0, K_0) / Π_{i∈J} e(C_{i,1}, K_{i,1})·e(C_{i,2},
    /// K_{i,2}) )` (Eq. 2 of the paper).
    ///
    /// On a pattern match this is the encrypted message; on a non-match it
    /// is a uniformly random-looking `GT` element (⊥ in the paper's terms —
    /// use [`Self::decode_message`] or compare against a known sentinel).
    ///
    /// Cost: exactly `1 + 2·|J|` pairings, metered by the engine.
    ///
    /// # Panics
    /// Panics if token and ciphertext widths differ.
    pub fn query(&self, token: &Token, ct: &Ciphertext) -> GtElem {
        self.query_many(token, &[ct])
            .pop()
            .expect("one ciphertext in, one candidate out")
    }

    /// [`Self::query`] over many ciphertexts under **one token**, the
    /// shape of the alert protocol's hot loop (one subscription token
    /// swept over every reported ciphertext).
    ///
    /// Ciphertexts are evaluated in lockstep chunks: each contributes its
    /// `1 + 2·|J|` pairings to a flat, ciphertext-major pair list that is
    /// handed to [`BilinearGroup::pair_batch`] in one call per chunk, so
    /// the engine can drive four pairings per instruction through the
    /// SIMD batch kernels. The pair order within each ciphertext is
    /// exactly the serial [`Self::query`] order, and the `GT` folds
    /// replay per ciphertext afterwards — candidate `i` is
    /// **byte-identical** to `self.query(token, cts[i])` and every
    /// counter total (`pairings`, `gt_mults`, …) advances exactly as the
    /// serial loop would. The pair scratch buffer is reused across
    /// chunks, so a sweep performs O(1) list allocations regardless of
    /// batch size.
    ///
    /// # Panics
    /// Panics if any ciphertext's width differs from the token's.
    pub fn query_many(&self, token: &Token, cts: &[&Ciphertext]) -> Vec<GtElem> {
        let grp = self.group;
        let per_ct = 1 + 2 * token.k.len();
        let mut results = Vec::with_capacity(cts.len());
        let mut pairs: Vec<(&GElem, &GElem)> =
            Vec::with_capacity(per_ct * BATCH_CHUNK.min(cts.len().max(1)));

        for chunk in cts.chunks(BATCH_CHUNK.max(1)) {
            pairs.clear();
            for ct in chunk {
                assert_eq!(
                    token.pattern.len(),
                    ct.width(),
                    "token/ciphertext width mismatch"
                );
                pairs.push((&ct.c0, &token.k0));
                for (i, k1, k2) in &token.k {
                    let (c1, c2) = &ct.c[*i];
                    pairs.push((c1, k1));
                    pairs.push((c2, k2));
                }
            }
            let gts = grp.pair_batch(&pairs);

            for (j, ct) in chunk.iter().enumerate() {
                let mut slots = gts[j * per_ct..(j + 1) * per_ct].iter();
                let numer = slots.next().expect("numerator pairing present");
                let mut denom = GtElem::identity();
                for gt in slots {
                    denom = grp.mul_gt(&denom, gt);
                }
                let blinding = grp.div_gt(numer, &denom);
                results.push(grp.div_gt(&ct.c_prime, &blinding));
            }
        }
        results
    }

    /// Convenience: query and decode; `Some(id)` on match, `None` (⊥)
    /// otherwise (up to negligible false-positive probability).
    ///
    /// Pays one residue → canonical conversion per call, match or not
    /// (the decode must inspect the canonical log). When the expected
    /// payload is known in advance — the alert protocol's SP stores the
    /// submitting user's id next to each ciphertext — prefer
    /// [`Self::match_token`] / [`Self::query_decode_batch`], which decide
    /// in the residue domain and convert only on match.
    pub fn query_decode(&self, token: &Token, ct: &Ciphertext) -> Option<u64> {
        self.decode_message(&self.query(token, ct))
    }

    /// **Residue-domain match decision**: evaluates the token and compares
    /// the candidate against the `expected` message element entirely
    /// inside the engine's Montgomery residue domain — zero canonical
    /// conversions, matching or not.
    ///
    /// `expected` is the known payload (`encode_message(id)` for the
    /// stored routing id); on a pattern match the query output *is* that
    /// element, so residue equality is exact — this is not a probabilistic
    /// shortcut, it decides the same predicate as
    /// `query_decode(token, ct) == Some(id)` (up to the same negligible
    /// false-positive probability ⊥ already carries).
    ///
    /// Cost: exactly `1 + 2·|J|` pairings, like [`Self::query`].
    ///
    /// # Panics
    /// Panics if token and ciphertext widths differ.
    pub fn match_token(&self, token: &Token, ct: &Ciphertext, expected: &GtElem) -> bool {
        self.group.eq_gt(&self.query(token, ct), expected)
    }

    /// Lockstep [`Self::match_token`] over `(ciphertext, expected)` pairs
    /// sharing one token: candidates come from [`Self::query_many`] (one
    /// `pair_batch` call per chunk), decisions stay in the residue domain
    /// (zero canonicalizations). Decision `i` equals
    /// `match_token(token, cts[i], expected_i)` exactly.
    ///
    /// # Panics
    /// Panics if any ciphertext's width differs from the token's.
    pub fn match_token_batch(&self, token: &Token, pairs: &[(&Ciphertext, &GtElem)]) -> Vec<bool> {
        let cts: Vec<&Ciphertext> = pairs.iter().map(|(ct, _)| *ct).collect();
        self.query_many(token, &cts)
            .iter()
            .zip(pairs)
            .map(|(candidate, (_, expected))| self.group.eq_gt(candidate, expected))
            .collect()
    }

    /// Batch [`Self::query_decode`] against `(ciphertext, expected)`
    /// pairs: each candidate is compared in the residue domain and the
    /// canonical conversion is paid **only on match** — non-matching
    /// pairs perform zero `from_residue` passes, which the op-counter
    /// tests pin (`CounterSnapshot::canonicalizations`).
    ///
    /// Returns exactly what per-pair [`Self::query_decode`] returns for
    /// every pair in which `expected` is the encrypted payload (the alert
    /// protocol's invariant: the SP derives it from the stored routing
    /// id).
    ///
    /// # Panics
    /// Panics if any ciphertext's width differs from the token's.
    pub fn query_decode_batch<'a, I>(&self, token: &Token, pairs: I) -> Vec<Option<u64>>
    where
        I: IntoIterator<Item = (&'a Ciphertext, &'a GtElem)>,
    {
        let pairs: Vec<(&Ciphertext, &GtElem)> = pairs.into_iter().collect();
        let cts: Vec<&Ciphertext> = pairs.iter().map(|(ct, _)| *ct).collect();
        self.query_many(token, &cts)
            .iter()
            .zip(&pairs)
            .map(|(candidate, (_, expected))| {
                if self.group.eq_gt(candidate, expected) {
                    self.decode_message(candidate)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Embeds an identifier from the valid message domain
    /// (`id < 2^MESSAGE_DOMAIN_BITS`) into `GT` as `gt^{id+1}`.
    ///
    /// # Panics
    /// Panics if `id >= 2^MESSAGE_DOMAIN_BITS`; use
    /// [`Self::try_encode_message`] for a fallible version.
    pub fn encode_message(&self, id: u64) -> GtElem {
        self.try_encode_message(id)
            .expect("message id outside valid domain")
    }

    /// Fallible [`Self::encode_message`]:
    /// `Err(HveError::MessageOutOfDomain)` when
    /// `id >= 2^MESSAGE_DOMAIN_BITS`.
    pub fn try_encode_message(&self, id: u64) -> Result<GtElem, HveError> {
        if id >= 1u64 << MESSAGE_DOMAIN_BITS {
            return Err(HveError::MessageOutOfDomain { id });
        }
        // +1 keeps the identity element out of the valid domain.
        Ok(self
            .group
            .pow_gt(&self.gt_generator(), &BigUint::from_u64(id + 1)))
    }

    /// Inverse of [`Self::encode_message`]; `None` when the element lies
    /// outside the valid message domain (the ⊥ outcome).
    ///
    /// This is a **conversion boundary**: the element's canonical log is
    /// requested through the engine, which meters one canonicalization.
    pub fn decode_message(&self, m: &GtElem) -> Option<u64> {
        let log = self.group.gt_canonical(m);
        let id_plus_1 = log.to_u64()?;
        if id_plus_1 == 0 || id_plus_1 > 1u64 << MESSAGE_DOMAIN_BITS {
            return None;
        }
        Some(id_plus_1 - 1)
    }

    fn gt_generator(&self) -> GtElem {
        let g = self.group.g();
        // NOTE: this is e(g, g); the pairing here is setup-time only and is
        // excluded from matching-cost accounting by construction (callers
        // snapshot counters around query()).
        self.group.pair(&g, &g)
    }
}

/// Encrypt-side key view: plain keys exponentiate through `pow_g`/`pow_gt`,
/// prepared keys through their fixed-base tables. Both are metered
/// identically by the engine.
enum EncKey<'k> {
    Plain(&'k PublicKey),
    Prepared(&'k PreparedPublicKey),
}

impl EncKey<'_> {
    fn pk(&self) -> &PublicKey {
        match self {
            EncKey::Plain(pk) => pk,
            EncKey::Prepared(p) => &p.pk,
        }
    }
    fn pow_a<G: BilinearGroup>(&self, grp: &G, e: &BigUint) -> GtElem {
        match self {
            EncKey::Plain(pk) => grp.pow_gt(&pk.a, e),
            EncKey::Prepared(p) => grp.pow_prepared_gt(&p.a, e),
        }
    }
    fn pow_v<G: BilinearGroup>(&self, grp: &G, e: &BigUint) -> GElem {
        match self {
            EncKey::Plain(pk) => grp.pow_g(&pk.v, e),
            EncKey::Prepared(p) => grp.pow_prepared_g(&p.v, e),
        }
    }
    fn pow_h<G: BilinearGroup>(&self, grp: &G, i: usize, e: &BigUint) -> GElem {
        match self {
            EncKey::Plain(pk) => grp.pow_g(&pk.h[i], e),
            EncKey::Prepared(p) => grp.pow_prepared_g(&p.h[i], e),
        }
    }
    fn pow_w<G: BilinearGroup>(&self, grp: &G, i: usize, e: &BigUint) -> GElem {
        match self {
            EncKey::Plain(pk) => grp.pow_g(&pk.w[i], e),
            EncKey::Prepared(p) => grp.pow_prepared_g(&p.w[i], e),
        }
    }
}

/// GenToken-side key view (see [`EncKey`]).
enum TokKey<'k> {
    Plain(&'k SecretKey),
    Prepared(&'k PreparedSecretKey),
}

impl TokKey<'_> {
    fn sk(&self) -> &SecretKey {
        match self {
            TokKey::Plain(sk) => sk,
            TokKey::Prepared(p) => &p.sk,
        }
    }
    /// `g^e` (the `K_0` seed factor).
    fn pow_gen<G: BilinearGroup>(&self, grp: &G, e: &BigUint) -> GElem {
        match self {
            TokKey::Plain(sk) => grp.pow_g(&sk.g, e),
            TokKey::Prepared(p) => grp.pow_prepared_g(&p.g, e),
        }
    }
    fn pow_v<G: BilinearGroup>(&self, grp: &G, e: &BigUint) -> GElem {
        match self {
            TokKey::Plain(sk) => grp.pow_g(&sk.v, e),
            TokKey::Prepared(p) => grp.pow_prepared_g(&p.v, e),
        }
    }
    fn pow_h<G: BilinearGroup>(&self, grp: &G, i: usize, e: &BigUint) -> GElem {
        match self {
            TokKey::Plain(sk) => grp.pow_g(&sk.h[i], e),
            TokKey::Prepared(p) => grp.pow_prepared_g(&p.h[i], e),
        }
    }
    fn pow_w<G: BilinearGroup>(&self, grp: &G, i: usize, e: &BigUint) -> GElem {
        match self {
            TokKey::Plain(sk) => grp.pow_g(&sk.w[i], e),
            TokKey::Prepared(p) => grp.pow_prepared_g(&p.w[i], e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_pairing::SimulatedGroup;

    fn fixture(width: usize) -> (SimulatedGroup, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x5eed + width as u64);
        let grp = SimulatedGroup::generate(48, &mut rng);
        (grp, rng)
    }

    #[test]
    fn fig2_match() {
        // Fig. 2a: token pattern agreeing with the index on all non-star
        // positions recovers the message.
        let (grp, mut rng) = fixture(5);
        let scheme = HveScheme::new(&grp, 5);
        let (pk, sk) = scheme.setup(&mut rng);

        let index: AttributeVector = "11010".parse().unwrap();
        let msg = scheme.encode_message(7);
        let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);

        let tk = scheme.gen_token(&sk, &"1*01*".parse().unwrap(), &mut rng);
        assert_eq!(scheme.query(&tk, &ct), msg);
        assert_eq!(scheme.query_decode(&tk, &ct), Some(7));
    }

    #[test]
    fn fig2_nonmatch() {
        // Fig. 2b: one disagreeing non-star position yields ⊥.
        let (grp, mut rng) = fixture(5);
        let scheme = HveScheme::new(&grp, 5);
        let (pk, sk) = scheme.setup(&mut rng);

        let index: AttributeVector = "11010".parse().unwrap();
        let msg = scheme.encode_message(7);
        let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);

        let tk = scheme.gen_token(&sk, &"0*01*".parse().unwrap(), &mut rng);
        assert_ne!(scheme.query(&tk, &ct), msg);
        assert_eq!(scheme.query_decode(&tk, &ct), None);
    }

    #[test]
    fn all_star_token_matches_everything() {
        let (grp, mut rng) = fixture(4);
        let scheme = HveScheme::new(&grp, 4);
        let (pk, sk) = scheme.setup(&mut rng);
        let tk = scheme.gen_token(&sk, &SearchPattern::all_stars(4), &mut rng);
        for bits in 0..16u32 {
            let index: AttributeVector = format!("{bits:04b}").parse().unwrap();
            let msg = scheme.encode_message(bits as u64);
            let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);
            assert_eq!(scheme.query_decode(&tk, &ct), Some(bits as u64));
        }
    }

    #[test]
    fn exhaustive_width_3() {
        // Every (index, pattern) combination of width 3: HVE evaluation
        // must agree exactly with plaintext pattern semantics.
        let (grp, mut rng) = fixture(3);
        let scheme = HveScheme::new(&grp, 3);
        let (pk, sk) = scheme.setup(&mut rng);

        let symbols = ['0', '1', '*'];
        for bits in 0..8u32 {
            let index: AttributeVector = format!("{bits:03b}").parse().unwrap();
            let msg = scheme.encode_message(bits as u64);
            let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);
            for s0 in symbols {
                for s1 in symbols {
                    for s2 in symbols {
                        let pat: SearchPattern = format!("{s0}{s1}{s2}").parse().unwrap();
                        let tk = scheme.gen_token(&sk, &pat, &mut rng);
                        let expected = pat.matches(&index);
                        let got = scheme.query_decode(&tk, &ct) == Some(bits as u64);
                        assert_eq!(got, expected, "index {index}, pattern {pat}");
                    }
                }
            }
        }
    }

    #[test]
    fn query_costs_exactly_one_plus_two_j_pairings() {
        let (grp, mut rng) = fixture(8);
        let scheme = HveScheme::new(&grp, 8);
        let (pk, sk) = scheme.setup(&mut rng);
        let index: AttributeVector = "10110100".parse().unwrap();
        let msg = scheme.encode_message(1);
        let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);

        for pat_str in ["********", "1*******", "10110100", "**11****"] {
            let pat: SearchPattern = pat_str.parse().unwrap();
            let tk = scheme.gen_token(&sk, &pat, &mut rng);
            let before = grp.counters().snapshot();
            let _ = scheme.query(&tk, &ct);
            let delta = grp.counters().snapshot() - before;
            assert_eq!(
                delta.pairings,
                1 + 2 * pat.non_star_count() as u64,
                "pattern {pat_str}"
            );
            assert_eq!(delta.pairings, tk.pairing_cost());
        }
    }

    #[test]
    fn message_domain_roundtrip() {
        let (grp, _) = fixture(2);
        let scheme = HveScheme::new(&grp, 2);
        for id in [0u64, 1, 42, (1 << MESSAGE_DOMAIN_BITS) - 1] {
            let m = scheme.encode_message(id);
            assert_eq!(scheme.decode_message(&m), Some(id));
        }
        assert_eq!(scheme.decode_message(&GtElem::identity()), None);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn encrypt_rejects_wrong_width() {
        let (grp, mut rng) = fixture(4);
        let scheme = HveScheme::new(&grp, 4);
        let (pk, _) = scheme.setup(&mut rng);
        let index: AttributeVector = "101".parse().unwrap();
        let msg = scheme.encode_message(1);
        let _ = scheme.encrypt(&pk, &index, &msg, &mut rng);
    }

    #[test]
    fn prepared_paths_are_bit_and_count_identical() {
        // encrypt_prepared/gen_token_prepared must consume the same RNG
        // stream, record the same OpCounters deltas, and emit the same
        // bytes as the plain paths — the tables change wall-clock only.
        let (grp, mut rng) = fixture(6);
        let scheme = HveScheme::new(&grp, 6);
        let (pk, sk) = scheme.setup(&mut rng);
        let ppk = scheme.prepare_public_key(&pk);
        let psk = scheme.prepare_secret_key(&sk);

        let index: AttributeVector = "101101".parse().unwrap();
        let msg = scheme.encode_message(99);
        let pat: SearchPattern = "1*11*1".parse().unwrap();

        let mut r1 = StdRng::seed_from_u64(0xfeed);
        let before_plain = grp.counters().snapshot();
        let ct_plain = scheme.encrypt(&pk, &index, &msg, &mut r1);
        let tk_plain = scheme.gen_token(&sk, &pat, &mut r1);
        let delta_plain = grp.counters().snapshot() - before_plain;

        let mut r2 = StdRng::seed_from_u64(0xfeed);
        let before_prep = grp.counters().snapshot();
        let ct_prep = scheme.encrypt_prepared(&ppk, &index, &msg, &mut r2);
        let tk_prep = scheme.gen_token_prepared(&psk, &pat, &mut r2);
        let delta_prep = grp.counters().snapshot() - before_prep;

        assert_eq!(ct_plain, ct_prep);
        assert_eq!(tk_plain, tk_prep);
        assert_eq!(delta_plain, delta_prep, "op counts must be identical");
        assert_eq!(
            serde_json::to_string(&ct_plain).unwrap(),
            serde_json::to_string(&ct_prep).unwrap(),
            "wire bytes must be identical"
        );
        // and the prepared material still decrypts
        assert_eq!(scheme.query_decode(&tk_prep, &ct_prep), Some(99));
    }

    #[test]
    fn batch_prepared_paths_are_bit_and_count_identical() {
        // encrypt_prepared_batch / gen_token_prepared_batch must consume
        // the same RNG stream, record the same OpCounters deltas, and
        // emit the same bytes as N serial prepared calls — the lockstep
        // regrouping changes wall-clock only.
        let (grp, mut rng) = fixture(6);
        let scheme = HveScheme::new(&grp, 6);
        let (pk, sk) = scheme.setup(&mut rng);
        let ppk = scheme.prepare_public_key(&pk);
        let psk = scheme.prepare_secret_key(&sk);

        let indexes: Vec<AttributeVector> = ["101101", "000000", "111111", "010010", "110001"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let msgs: Vec<GtElem> = (0..indexes.len() as u64)
            .map(|i| scheme.encode_message(40 + i))
            .collect();
        let patterns: Vec<SearchPattern> = ["1*11*1", "******", "000000", "*1*0**", "1*****"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();

        for n in [0usize, 1, 3, 5] {
            let enc_items: Vec<(&AttributeVector, &GtElem)> =
                indexes[..n].iter().zip(&msgs[..n]).collect();
            let pats: Vec<&SearchPattern> = patterns[..n].iter().collect();

            let mut r1 = StdRng::seed_from_u64(0xfeed);
            let before = grp.counters().snapshot();
            let cts_serial: Vec<Ciphertext> = enc_items
                .iter()
                .map(|(idx, msg)| scheme.encrypt_prepared(&ppk, idx, msg, &mut r1))
                .collect();
            let tks_serial: Vec<Token> = pats
                .iter()
                .map(|pat| scheme.gen_token_prepared(&psk, pat, &mut r1))
                .collect();
            let delta_serial = grp.counters().snapshot() - before;

            let mut r2 = StdRng::seed_from_u64(0xfeed);
            let before = grp.counters().snapshot();
            let cts_batch = scheme.encrypt_prepared_batch(&ppk, &enc_items, &mut r2);
            let tks_batch = scheme.gen_token_prepared_batch(&psk, &pats, &mut r2);
            let delta_batch = grp.counters().snapshot() - before;

            assert_eq!(cts_batch, cts_serial, "n = {n}");
            assert_eq!(tks_batch, tks_serial, "n = {n}");
            assert_eq!(delta_batch, delta_serial, "op counts must match (n = {n})");
            assert_eq!(
                serde_json::to_string(&cts_batch).unwrap(),
                serde_json::to_string(&cts_serial).unwrap(),
                "wire bytes must be identical (n = {n})"
            );
            // the batch material still decrypts correctly
            for (j, (ct, tk)) in cts_batch.iter().zip(&tks_batch).enumerate() {
                let expect = pats[j].matches(&indexes[j]).then_some(40 + j as u64);
                assert_eq!(scheme.query_decode(tk, ct), expect, "n = {n}, j = {j}");
            }
        }
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        let (grp, _) = fixture(1);
        assert_eq!(
            HveScheme::try_new(&grp, 0).unwrap_err(),
            HveError::ZeroWidth
        );
        let scheme = HveScheme::try_new(&grp, 3).unwrap();
        assert_eq!(scheme.width(), 3);
        let big = 1u64 << MESSAGE_DOMAIN_BITS;
        assert_eq!(
            scheme.try_encode_message(big).unwrap_err(),
            HveError::MessageOutOfDomain { id: big }
        );
        assert!(scheme.try_encode_message(big - 1).is_ok());
    }

    #[test]
    fn match_token_is_conversion_free_and_agrees_with_query_decode() {
        let (grp, mut rng) = fixture(5);
        let scheme = HveScheme::new(&grp, 5);
        let (pk, sk) = scheme.setup(&mut rng);

        let index: AttributeVector = "11010".parse().unwrap();
        let msg = scheme.encode_message(7);
        let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);
        let hit = scheme.gen_token(&sk, &"1*01*".parse().unwrap(), &mut rng);
        let miss = scheme.gen_token(&sk, &"0*01*".parse().unwrap(), &mut rng);

        let before = grp.counters().snapshot();
        assert!(scheme.match_token(&hit, &ct, &msg));
        assert!(!scheme.match_token(&miss, &ct, &msg));
        let delta = grp.counters().snapshot() - before;
        assert_eq!(
            delta.canonicalizations, 0,
            "match_token must decide in the residue domain"
        );
        assert_eq!(scheme.query_decode(&hit, &ct), Some(7));
        assert_eq!(scheme.query_decode(&miss, &ct), None);
    }

    #[test]
    fn query_decode_batch_converts_only_on_match() {
        // The ROADMAP's batch-query conversion hoisting: per-pair
        // query_decode pays one canonicalization per (token, ciphertext)
        // pair; the batch API pays one per *match* and zero on non-match,
        // with identical results.
        let (grp, mut rng) = fixture(4);
        let scheme = HveScheme::new(&grp, 4);
        let (pk, sk) = scheme.setup(&mut rng);

        let population: Vec<(Ciphertext, GtElem, u64)> = (0..16u64)
            .map(|bits| {
                let index: AttributeVector = format!("{bits:04b}").parse().unwrap();
                let msg = scheme.encode_message(bits);
                let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);
                (ct, msg, bits)
            })
            .collect();
        // Pattern 1*0* matches indexes {1000, 1001, 1100, 1101}.
        let tk = scheme.gen_token(&sk, &"1*0*".parse().unwrap(), &mut rng);

        let serial: Vec<Option<u64>> = population
            .iter()
            .map(|(ct, _, _)| scheme.query_decode(&tk, ct))
            .collect();
        let n_matches = serial.iter().flatten().count() as u64;
        assert_eq!(n_matches, 4);

        let before = grp.counters().snapshot();
        let batch = scheme.query_decode_batch(&tk, population.iter().map(|(ct, msg, _)| (ct, msg)));
        let delta = grp.counters().snapshot() - before;

        assert_eq!(batch, serial, "batch must equal per-pair query_decode");
        assert_eq!(
            delta.canonicalizations, n_matches,
            "batch decode must convert on matches only (0 for non-matches)"
        );
        // And the per-pair path really pays one conversion per pair.
        let before = grp.counters().snapshot();
        let _: Vec<Option<u64>> = population
            .iter()
            .map(|(ct, _, _)| scheme.query_decode(&tk, ct))
            .collect();
        let delta = grp.counters().snapshot() - before;
        assert_eq!(delta.canonicalizations, population.len() as u64);
    }

    #[test]
    fn query_many_is_byte_identical_to_serial_query_with_equal_counters() {
        // The lockstep sweep: candidates, counter totals and residue
        // limbs must all equal the one-at-a-time loop, across batch
        // sizes that cover the empty batch, a partial chunk, an exact
        // chunk boundary and a ragged multi-chunk sweep.
        let (grp, mut rng) = fixture(4);
        let scheme = HveScheme::new(&grp, 4);
        let (pk, sk) = scheme.setup(&mut rng);

        let population: Vec<Ciphertext> = (0..37u64)
            .map(|i| {
                let bits = i % 16;
                let index: AttributeVector = format!("{bits:04b}").parse().unwrap();
                let msg = scheme.encode_message(bits);
                scheme.encrypt(&pk, &index, &msg, &mut rng)
            })
            .collect();
        let tk = scheme.gen_token(&sk, &"1*0*".parse().unwrap(), &mut rng);

        for n in [0usize, 1, 5, 16, 17, 37] {
            let cts: Vec<&Ciphertext> = population[..n].iter().collect();
            let before = grp.counters().snapshot();
            let serial: Vec<GtElem> = cts.iter().map(|ct| scheme.query(&tk, ct)).collect();
            let mid = grp.counters().snapshot();
            let batched = scheme.query_many(&tk, &cts);
            let after = grp.counters().snapshot();

            assert_eq!(batched, serial, "n = {n}");
            for (x, y) in batched.iter().zip(&serial) {
                assert_eq!(x.discrete_log(), y.discrete_log(), "n = {n}");
            }
            assert_eq!(
                after - mid,
                mid - before,
                "lockstep sweep must meter exactly like the serial loop (n = {n})"
            );
        }
    }

    #[test]
    fn match_token_batch_agrees_with_serial_and_stays_in_domain() {
        let (grp, mut rng) = fixture(4);
        let scheme = HveScheme::new(&grp, 4);
        let (pk, sk) = scheme.setup(&mut rng);

        let population: Vec<(Ciphertext, GtElem)> = (0..16u64)
            .map(|bits| {
                let index: AttributeVector = format!("{bits:04b}").parse().unwrap();
                let msg = scheme.encode_message(bits);
                (scheme.encrypt(&pk, &index, &msg, &mut rng), msg)
            })
            .collect();
        let tk = scheme.gen_token(&sk, &"1*0*".parse().unwrap(), &mut rng);
        let pairs: Vec<(&Ciphertext, &GtElem)> =
            population.iter().map(|(ct, msg)| (ct, msg)).collect();

        let serial: Vec<bool> = pairs
            .iter()
            .map(|(ct, msg)| scheme.match_token(&tk, ct, msg))
            .collect();
        assert_eq!(serial.iter().filter(|&&b| b).count(), 4);

        let before = grp.counters().snapshot();
        let batched = scheme.match_token_batch(&tk, &pairs);
        let delta = grp.counters().snapshot() - before;
        assert_eq!(batched, serial);
        assert_eq!(
            delta.canonicalizations, 0,
            "batch matching must decide in the residue domain"
        );
        assert_eq!(
            delta.pairings,
            pairs.len() as u64 * tk.pairing_cost(),
            "batching must not change the pairing count"
        );
    }

    #[test]
    fn serde_roundtrip_of_all_material() {
        let (grp, mut rng) = fixture(3);
        let scheme = HveScheme::new(&grp, 3);
        let (pk, sk) = scheme.setup(&mut rng);
        let index: AttributeVector = "101".parse().unwrap();
        let ct = scheme.encrypt(&pk, &index, &scheme.encode_message(3), &mut rng);
        let tk = scheme.gen_token(&sk, &"1*1".parse().unwrap(), &mut rng);

        let pk2: PublicKey = serde_json::from_str(&serde_json::to_string(&pk).unwrap()).unwrap();
        let sk2: SecretKey = serde_json::from_str(&serde_json::to_string(&sk).unwrap()).unwrap();
        let ct2: Ciphertext = serde_json::from_str(&serde_json::to_string(&ct).unwrap()).unwrap();
        let tk2: Token = serde_json::from_str(&serde_json::to_string(&tk).unwrap()).unwrap();
        assert_eq!(pk, pk2);
        assert_eq!(sk, sk2);
        assert_eq!(ct, ct2);
        assert_eq!(tk, tk2);
        // deserialized material still decrypts
        assert_eq!(scheme.query_decode(&tk2, &ct2), Some(3));
    }
}
