//! Key, ciphertext and token material.

use crate::vector::SearchPattern;
use serde::{Deserialize, Serialize};
use sla_bigint::BigUint;
use sla_pairing::{GElem, GtElem};

/// HVE secret key (held by the Trusted Authority in the alert protocol).
///
/// Matches §2.1 of the paper:
/// `SK = (g_q ∈ G_q, a ∈ Z_p, ∀i: u_i, h_i, w_i, g, v ∈ G_p)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey {
    pub(crate) width: usize,
    pub(crate) a: BigUint,
    pub(crate) g: GElem,
    pub(crate) v: GElem,
    pub(crate) gq: GElem,
    pub(crate) u: Vec<GElem>,
    pub(crate) h: Vec<GElem>,
    pub(crate) w: Vec<GElem>,
}

impl SecretKey {
    /// HVE width `l` (bit length of attribute vectors).
    pub fn width(&self) -> usize {
        self.width
    }
}

/// HVE public key (distributed to mobile users).
///
/// `PK = (g_q, V = v·R_v, A = e(g,v)^a, ∀i: U_i, H_i, W_i)` with each
/// `G_p` base blinded by a random `G_q` element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    pub(crate) width: usize,
    pub(crate) gq: GElem,
    pub(crate) v: GElem,
    pub(crate) a: GtElem,
    pub(crate) u: Vec<GElem>,
    pub(crate) h: Vec<GElem>,
    pub(crate) w: Vec<GElem>,
}

impl PublicKey {
    /// HVE width `l`.
    pub fn width(&self) -> usize {
        self.width
    }
}

/// An HVE ciphertext:
/// `C = (C' = M·A^s, C_0 = V^s·Z, ∀i: C_{i,1}, C_{i,2})`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    pub(crate) c_prime: GtElem,
    pub(crate) c0: GElem,
    /// One `(C_{i,1}, C_{i,2})` pair per attribute position.
    pub(crate) c: Vec<(GElem, GElem)>,
}

impl Ciphertext {
    /// Width `l` of the attribute the ciphertext was produced under.
    pub fn width(&self) -> usize {
        self.c.len()
    }

    /// The ciphertext's components `(C', C_0, [(C_{i,1}, C_{i,2})])` —
    /// the wire view binary codecs (`sla-persist`) encode. Group elements
    /// expose their canonical log through
    /// [`GElem::discrete_log`]/[`GtElem::discrete_log`], so the encoded
    /// bytes are representation-independent.
    pub fn parts(&self) -> (&GtElem, &GElem, &[(GElem, GElem)]) {
        (&self.c_prime, &self.c0, &self.c)
    }

    /// Reassembles a ciphertext from its components — the inverse of
    /// [`Self::parts`]. No validity check is possible (ciphertexts are
    /// opaque group-element tuples); width checks happen where the
    /// ciphertext is used.
    pub fn from_parts(c_prime: GtElem, c0: GElem, c: Vec<(GElem, GElem)>) -> Self {
        Ciphertext { c_prime, c0, c }
    }
}

/// An HVE search token:
/// `TK = (I*, K_0, ∀i∈J: K_{i,1}, K_{i,2})` where `J` is the set of
/// non-star positions of the pattern.
///
/// The pattern itself is carried in the clear — this is inherent to HVE
/// tokens (the paper's §6 security discussion: the SP learns the predicate,
/// not the data).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    pub(crate) pattern: SearchPattern,
    pub(crate) k0: GElem,
    /// `(position, K_{i,1}, K_{i,2})`, one triple per non-star position.
    pub(crate) k: Vec<(usize, GElem, GElem)>,
}

impl Token {
    /// The pattern the token searches for.
    pub fn pattern(&self) -> &SearchPattern {
        &self.pattern
    }

    /// Number of non-star positions `|J|`.
    pub fn non_star_count(&self) -> usize {
        self.k.len()
    }

    /// Pairings required to evaluate this token against one ciphertext:
    /// `1 + 2·|J|` (§2.1: one for `e(C_0, K_0)` plus two per position in
    /// `J`).
    pub fn pairing_cost(&self) -> u64 {
        1 + 2 * self.k.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_pairing_cost_formula() {
        let tk = Token {
            pattern: "1*0".parse().unwrap(),
            k0: GElem::identity(),
            k: vec![
                (0, GElem::identity(), GElem::identity()),
                (2, GElem::identity(), GElem::identity()),
            ],
        };
        assert_eq!(tk.non_star_count(), 2);
        assert_eq!(tk.pairing_cost(), 5);
    }
}
