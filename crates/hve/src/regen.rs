//! Incremental token regeneration for dynamic alert zones.
//!
//! When an alert zone moves between epochs, most of its minimized token
//! patterns survive unchanged — only the cells that entered or exited the
//! zone perturb the Huffman cover. A [`TokenCache`] keyed on the minimized
//! [`SearchPattern`] lets the trusted authority regenerate **only the
//! missing patterns** (in one [`HveScheme::gen_token_prepared_batch`] call)
//! and reuse every token whose pattern is unchanged.
//!
//! Reuse is sound because match outcomes and pairing costs depend only on
//! the *pattern* of a token, never on its randomness: a cached token for
//! pattern `p` notifies exactly the same ciphertexts, at exactly
//! `1 + 2·|J|` pairings each, as a freshly drawn one. Token *bytes* differ
//! from a full regeneration (fewer RNG draws), but notified sets and
//! metered pairings are identical by construction.

use std::collections::HashMap;

use rand::Rng;
use sla_pairing::BilinearGroup;

use crate::keys::{SecretKey, Token};
use crate::prepared::PreparedSecretKey;
use crate::scheme::HveScheme;
use crate::vector::SearchPattern;

/// Counters describing one incremental regeneration pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegenStats {
    /// Patterns that had no cached token and were freshly generated.
    pub generated: usize,
    /// Patterns served from the cache without any group operations.
    pub reused: usize,
    /// Cached tokens dropped because their pattern left the active set.
    pub evicted: usize,
}

/// A pattern-keyed cache of issued tokens, reused across epochs.
///
/// The cache holds exactly the tokens of the most recent active pattern
/// set: [`TokenCache::regen_with`] evicts every entry whose pattern is
/// absent from the new set, so memory is bounded by the largest single
/// epoch's token count.
#[derive(Debug, Default)]
pub struct TokenCache {
    tokens: HashMap<SearchPattern, Token>,
}

impl TokenCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached tokens (the previous epoch's pattern count).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Drops every cached token, forcing the next pass to regenerate all.
    pub fn clear(&mut self) {
        self.tokens.clear();
    }

    /// Core delta step: returns one token per entry of `patterns` (in
    /// order), generating only the patterns missing from the cache via
    /// `gen_missing` (called once, with the missing patterns in first-use
    /// order), then evicts every cached pattern absent from `patterns`.
    ///
    /// # Panics
    /// Panics if `gen_missing` returns a different number of tokens than
    /// the patterns it was given.
    pub fn regen_with<F>(
        &mut self,
        patterns: &[SearchPattern],
        gen_missing: F,
    ) -> (Vec<Token>, RegenStats)
    where
        F: FnOnce(&[&SearchPattern]) -> Vec<Token>,
    {
        let mut missing: Vec<&SearchPattern> = Vec::new();
        let mut reused = 0usize;
        for pat in patterns {
            if self.tokens.contains_key(pat) {
                reused += 1;
            } else if !missing.contains(&pat) {
                missing.push(pat);
            }
        }
        let generated = missing.len();
        if generated > 0 {
            let fresh = gen_missing(&missing);
            assert_eq!(
                fresh.len(),
                generated,
                "gen_missing must return one token per missing pattern"
            );
            for (pat, tok) in missing.iter().zip(fresh) {
                self.tokens.insert((*pat).clone(), tok);
            }
        }
        let before = self.tokens.len();
        self.tokens.retain(|pat, _| patterns.contains(pat));
        let evicted = before - self.tokens.len();
        let out = patterns
            .iter()
            .map(|pat| self.tokens[pat].clone())
            .collect();
        (
            out,
            RegenStats {
                generated,
                reused,
                evicted,
            },
        )
    }
}

impl<'a, G: BilinearGroup> HveScheme<'a, G> {
    /// Incremental GenToken through a [`PreparedSecretKey`]: serves the
    /// new epoch's `patterns` from `cache`, batching only the missing
    /// ones through [`Self::gen_token_prepared_batch`].
    ///
    /// # Panics
    /// Panics if any pattern's length differs from the scheme width.
    pub fn regen_tokens_prepared<R: Rng>(
        &self,
        psk: &PreparedSecretKey,
        cache: &mut TokenCache,
        patterns: &[SearchPattern],
        rng: &mut R,
    ) -> (Vec<Token>, RegenStats) {
        cache.regen_with(patterns, |missing| {
            self.gen_token_prepared_batch(psk, missing, rng)
        })
    }

    /// Incremental GenToken through a plain [`SecretKey`]: the cache
    /// discipline of [`Self::regen_tokens_prepared`] with each missing
    /// token derived serially by [`Self::gen_token`].
    ///
    /// # Panics
    /// Panics if any pattern's length differs from the scheme width.
    pub fn regen_tokens<R: Rng>(
        &self,
        sk: &SecretKey,
        cache: &mut TokenCache,
        patterns: &[SearchPattern],
        rng: &mut R,
    ) -> (Vec<Token>, RegenStats) {
        cache.regen_with(patterns, |missing| {
            missing
                .iter()
                .map(|pat| self.gen_token(sk, pat, rng))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_pairing::SimulatedGroup;

    fn pat(s: &str) -> SearchPattern {
        s.parse().unwrap()
    }

    #[test]
    fn regen_reuses_and_evicts() {
        let mut rng = StdRng::seed_from_u64(11);
        let group = SimulatedGroup::generate(40, &mut rng);
        let scheme = HveScheme::new(&group, 4);
        let (_pk, sk) = scheme.setup(&mut rng);
        let psk = scheme.prepare_secret_key(&sk);
        let mut cache = TokenCache::new();

        let epoch1 = vec![pat("1*1*"), pat("01**")];
        let (toks1, s1) = scheme.regen_tokens_prepared(&psk, &mut cache, &epoch1, &mut rng);
        assert_eq!(toks1.len(), 2);
        assert_eq!(
            s1,
            RegenStats {
                generated: 2,
                reused: 0,
                evicted: 0
            }
        );

        // Second epoch keeps one pattern, drops one, adds one.
        let epoch2 = vec![pat("01**"), pat("111*")];
        let (toks2, s2) = scheme.regen_tokens_prepared(&psk, &mut cache, &epoch2, &mut rng);
        assert_eq!(toks2.len(), 2);
        assert_eq!(
            s2,
            RegenStats {
                generated: 1,
                reused: 1,
                evicted: 1
            }
        );
        // The surviving pattern's token is reused byte-identically.
        assert_eq!(toks2[0], toks1[1]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn empty_pattern_set_evicts_everything() {
        let mut rng = StdRng::seed_from_u64(12);
        let group = SimulatedGroup::generate(40, &mut rng);
        let scheme = HveScheme::new(&group, 4);
        let (_pk, sk) = scheme.setup(&mut rng);
        let mut cache = TokenCache::new();

        let (_, s1) = scheme.regen_tokens(&sk, &mut cache, &[pat("1***")], &mut rng);
        assert_eq!(s1.generated, 1);
        let (toks, s2) = scheme.regen_tokens(&sk, &mut cache, &[], &mut rng);
        assert!(toks.is_empty());
        assert_eq!(
            s2,
            RegenStats {
                generated: 0,
                reused: 0,
                evicted: 1
            }
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_token_matches_like_fresh() {
        let mut rng = StdRng::seed_from_u64(13);
        let group = SimulatedGroup::generate(40, &mut rng);
        let scheme = HveScheme::new(&group, 4);
        let (pk, sk) = scheme.setup(&mut rng);
        let psk = scheme.prepare_secret_key(&sk);
        let msg = scheme.encode_message(9);
        let index = crate::AttributeVector::from_bits(&[true, false, true, true]);
        let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);

        let mut cache = TokenCache::new();
        let p = pat("1*1*");
        let (t1, _) =
            scheme.regen_tokens_prepared(&psk, &mut cache, std::slice::from_ref(&p), &mut rng);
        // Re-serve the same pattern from cache; matching must agree.
        let (t2, s2) =
            scheme.regen_tokens_prepared(&psk, &mut cache, std::slice::from_ref(&p), &mut rng);
        assert_eq!(s2.reused, 1);
        assert_eq!(t1[0], t2[0]);
        assert_eq!(scheme.query_decode(&t2[0], &ct), Some(9));
    }
}
