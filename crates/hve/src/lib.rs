//! # sla-hve
//!
//! **Hidden Vector Encryption** (HVE) as specified by Boneh & Waters
//! ("Conjunctive, subset, and range queries on encrypted data", TCC 2007)
//! and restated in §2.1 of the EDBT 2021 secure location-alert paper.
//!
//! HVE encrypts a message `M ∈ GT` under a binary *attribute vector*
//! `I ∈ {0,1}^l`. A *search token* is derived from a *pattern vector*
//! `I* ∈ {0,1,*}^l`; evaluating a token against a ciphertext recovers `M`
//! iff the attribute agrees with the pattern on every non-star position.
//! Nothing else about `I` leaks — in particular the evaluator cannot tell
//! *which* position mismatched.
//!
//! The matching cost at the evaluator is `1 + 2·|J|` bilinear pairings,
//! where `J` is the set of non-star positions — this is the quantity the
//! paper's Huffman encoding minimizes, and the engine's
//! [`OpCounters`](sla_pairing::OpCounters) meter it.
//!
//! ## Phases
//!
//! * [`HveScheme::setup`] — key generation over a composite-order group.
//! * [`HveScheme::encrypt`] — users encrypt `(I, M)` with the public key.
//! * [`HveScheme::gen_token`] — the secret-key holder derives a token for a
//!   pattern.
//! * [`HveScheme::query`] — the evaluator applies a token to a ciphertext.
//!
//! ## Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use sla_pairing::SimulatedGroup;
//! use sla_hve::{AttributeVector, HveScheme, SearchPattern};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let group = SimulatedGroup::generate(48, &mut rng);
//! let scheme = HveScheme::new(&group, 4);
//! let (pk, sk) = scheme.setup(&mut rng);
//!
//! let index = AttributeVector::from_bits(&[true, false, true, true]);
//! let msg = scheme.encode_message(42);
//! let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);
//!
//! // pattern 1*1* matches 1011
//! let pat: SearchPattern = "1*1*".parse().unwrap();
//! let tk = scheme.gen_token(&sk, &pat, &mut rng);
//! assert_eq!(scheme.query_decode(&tk, &ct), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod keys;
mod prepared;
mod regen;
mod scheme;
mod vector;

pub use error::HveError;
pub use keys::{Ciphertext, PublicKey, SecretKey, Token};
pub use prepared::{PreparedPublicKey, PreparedSecretKey};
pub use regen::{RegenStats, TokenCache};
pub use scheme::{HveScheme, MESSAGE_DOMAIN_BITS};
pub use vector::{AttributeVector, ParseVectorError, SearchPattern};
