//! The blocking wire client: connect (with startup retry), one
//! request/response call, and busy-retry.

use sla_core::{SlaError, SlaResult};
use sla_server::{
    decode_response, encode_request, read_frame, write_frame, FrameIn, Request, Response,
};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Where the server lives.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:4240`.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
        }
    }
}

#[derive(Debug)]
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to an `sla-server`.
#[derive(Debug)]
pub struct Client {
    stream: Stream,
}

/// How long a blocked call waits before giving up (an alert over a
/// large population can legitimately take a while).
const CALL_TIMEOUT: Duration = Duration::from_secs(60);

/// Backoff between retries of a [`Response::Busy`] rejection.
const BUSY_BACKOFF: Duration = Duration::from_micros(200);

impl Client {
    /// Connects, retrying refused/missing endpoints until `patience`
    /// runs out — so a freshly `exec`'d server needs no sleep-and-hope
    /// coordination: start it, then connect.
    pub fn connect(endpoint: &Endpoint, patience: Duration) -> SlaResult<Client> {
        let deadline = Instant::now() + patience;
        loop {
            let attempt = match endpoint {
                Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
                Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
            };
            match attempt {
                Ok(stream) => {
                    match &stream {
                        Stream::Unix(s) => {
                            s.set_read_timeout(Some(CALL_TIMEOUT))?;
                            s.set_write_timeout(Some(CALL_TIMEOUT))?;
                        }
                        Stream::Tcp(s) => {
                            s.set_read_timeout(Some(CALL_TIMEOUT))?;
                            s.set_write_timeout(Some(CALL_TIMEOUT))?;
                        }
                    }
                    return Ok(Client { stream });
                }
                Err(e) => {
                    let retryable = matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionRefused | io::ErrorKind::NotFound
                    );
                    if !retryable || Instant::now() >= deadline {
                        return Err(SlaError::Io {
                            detail: format!("connect {endpoint}: {e}"),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    /// One request/response round trip.
    pub fn call(&mut self, req: &Request) -> SlaResult<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        match read_frame(&mut self.stream)? {
            FrameIn::Frame(payload) => Ok(decode_response(&payload)?),
            FrameIn::Closed => Err(SlaError::Io {
                detail: "server closed the connection mid-call".into(),
            }),
            FrameIn::Torn(detail) => Err(SlaError::Protocol { detail }),
            FrameIn::Aborted => unreachable!("client reads have no abort condition"),
        }
    }

    /// [`Self::call`], transparently retrying typed [`Response::Busy`]
    /// rejections with a small backoff; each retry increments
    /// `busy_retries`. The returned response is never `Busy`.
    pub fn call_retrying(&mut self, req: &Request, busy_retries: &mut u64) -> SlaResult<Response> {
        loop {
            match self.call(req)? {
                Response::Busy { .. } => {
                    *busy_retries += 1;
                    std::thread::sleep(BUSY_BACKOFF);
                }
                resp => return Ok(resp),
            }
        }
    }
}
