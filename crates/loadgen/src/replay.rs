//! Replays a dataset churn workload over the wire and records
//! client-observed latency per operation kind.
//!
//! The workload is `sla_datasets::ChurnWorkload` — the same generator
//! the in-process lifecycle tests and benches use — over the paper's
//! Chicago-downtown 32×32 grid, so the loadgen and the server agree on
//! cell indices by construction. Each epoch's events are partitioned
//! into per-user-ordered streams (`ChurnEpoch::writer_streams`), one
//! per client thread, each thread holding its own connection; after the
//! epoch's events land, one alert is issued over the epoch's zone
//! (alternating the serial and batch server paths) and the notified set
//! is checked against the workload's plaintext ground truth
//! (`positions_after`) — the loadgen doubles as an end-to-end checker.
//!
//! Latency is measured around [`Client::call_retrying`], so a `Busy`
//! rejection's backoff-and-retry is *included* in the recorded value:
//! the histograms report what a client experiences, not what the server
//! admits to.

use crate::client::{Client, Endpoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_bench::histogram::LatencyHistogram;
use sla_core::{SlaError, SlaResult};
use sla_datasets::workload::{ChurnConfig, ChurnEvent, ChurnWorkload};
use sla_grid::{Grid, ProbabilityMap, ZoneSampler};
use sla_scenarios::{ScenarioConfig, ScenarioKind, ScenarioWorkload};
use sla_server::{Request, Response, WireStats};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// What to replay and how hard.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The server to talk to.
    pub endpoint: Endpoint,
    /// Client threads (each with its own connection).
    pub threads: usize,
    /// Initial population size.
    pub users: u64,
    /// Churn epochs after the initial subscription wave.
    pub epochs: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Replay a named scenario (`moving`, `burst`, `mixed`, `zipf`)
    /// instead of the default static-zone churn workload. Mixed
    /// granularity is replayed at exact (L0) cells — the wire protocol
    /// carries plain cell indices, so coarsening is a client-side
    /// concern exercised by the in-process scenario matrix.
    pub scenario: Option<ScenarioKind>,
    /// Send a `shutdown` RPC once the replay finishes.
    pub send_shutdown: bool,
}

/// Per-kind latency histograms (nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct OpHistograms {
    /// `subscribe` (includes moves — the wire op is the same upsert).
    pub subscribe: LatencyHistogram,
    /// `unsubscribe`.
    pub unsubscribe: LatencyHistogram,
    /// Serial-path alerts.
    pub alert: LatencyHistogram,
    /// Batch-path alerts.
    pub batch_alert: LatencyHistogram,
    /// `stats` snapshots.
    pub stats: LatencyHistogram,
}

impl OpHistograms {
    fn merge(&mut self, other: &OpHistograms) {
        self.subscribe.merge(&other.subscribe);
        self.unsubscribe.merge(&other.unsubscribe);
        self.alert.merge(&other.alert);
        self.batch_alert.merge(&other.batch_alert);
        self.stats.merge(&other.stats);
    }

    /// Total recorded operations.
    pub fn total(&self) -> u64 {
        self.subscribe.count()
            + self.unsubscribe.count()
            + self.alert.count()
            + self.batch_alert.count()
            + self.stats.count()
    }
}

/// The outcome of one replay run.
#[derive(Debug)]
pub struct ReplayReport {
    /// Latency histograms per operation kind.
    pub ops: OpHistograms,
    /// Wall-clock time of the measured section.
    pub elapsed: Duration,
    /// Busy rejections retried (across all threads).
    pub busy_retries: u64,
    /// Alert notified-sets that disagreed with the plaintext ground
    /// truth — must be zero; nonzero fails the run's exit code.
    pub mismatches: u64,
    /// Alerts whose notified set was verified against ground truth.
    pub alerts_checked: u64,
    /// The server's own counters, snapshotted after the replay.
    pub server_stats: WireStats,
}

impl ReplayReport {
    /// Recorded operations per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops.total() as f64 / secs
        }
    }
}

/// One timed call: records client-observed latency (busy retries
/// included) into `hist`.
fn timed_call(
    client: &mut Client,
    req: &Request,
    hist: &mut LatencyHistogram,
    busy_retries: &mut u64,
) -> SlaResult<Response> {
    let start = Instant::now();
    let resp = client.call_retrying(req, busy_retries)?;
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    hist.record(nanos);
    if let Response::Error { code, detail } = &resp {
        return Err(SlaError::Protocol {
            detail: format!("server rejected {}: {code:?}: {detail}", req.kind()),
        });
    }
    Ok(resp)
}

fn event_request(event: &ChurnEvent) -> Request {
    match *event {
        ChurnEvent::Subscribe { user_id, cell } | ChurnEvent::Move { user_id, cell } => {
            Request::Subscribe {
                user_id,
                cell: cell as u64,
            }
        }
        ChurnEvent::Unsubscribe { user_id } => Request::Unsubscribe { user_id },
    }
}

/// Generates the churn workload this replay drives (deterministic in
/// the config).
pub fn generate_workload(config: &ReplayConfig) -> ChurnWorkload {
    if let Some(kind) = config.scenario {
        // The scenario engine's workloads are churn workloads too, so
        // the whole replay/verification pipeline below runs unchanged —
        // including the per-epoch ground-truth check, which for a moving
        // zone verifies the server across the zone's cell deltas.
        let scenario_cfg = ScenarioConfig {
            users: config.users,
            epochs: config.epochs,
            seed: config.seed,
        };
        return ScenarioWorkload::generate(kind, &scenario_cfg).churn;
    }
    let grid = Grid::chicago_downtown_32();
    let probs = ProbabilityMap::uniform(grid.n_cells());
    let sampler = ZoneSampler::new(grid, &probs);
    let churn = ChurnConfig {
        users: config.users,
        epochs: config.epochs,
        ..ChurnConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    churn.generate(&sampler, &mut rng)
}

/// Runs the replay: connect `threads` clients, stream every epoch's
/// events concurrently, issue and verify every epoch's alert, snapshot
/// the server's stats, and (optionally) shut the server down.
pub fn replay(config: &ReplayConfig) -> SlaResult<ReplayReport> {
    if config.threads == 0 {
        return Err(SlaError::Protocol {
            detail: "replay needs at least one client thread".into(),
        });
    }
    let workload = generate_workload(config);

    let patience = Duration::from_secs(10);
    let mut clients = Vec::with_capacity(config.threads);
    for _ in 0..config.threads {
        clients.push(Client::connect(&config.endpoint, patience)?);
    }

    let mut ops = OpHistograms::default();
    let mut busy_retries = 0u64;
    let mut mismatches = 0u64;
    let mut alerts_checked = 0u64;
    let started = Instant::now();

    for (epoch_idx, epoch) in workload.epochs.iter().enumerate() {
        // Concurrent churn: one stream per client thread, per-user
        // order preserved inside each stream.
        let streams = epoch.writer_streams(config.threads);
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = clients
                .iter_mut()
                .zip(streams.iter())
                .map(|(client, stream)| {
                    scope.spawn(move || -> SlaResult<(OpHistograms, u64)> {
                        let mut hist = OpHistograms::default();
                        let mut busy = 0u64;
                        for event in stream {
                            let req = event_request(event);
                            let slot = match req {
                                Request::Subscribe { .. } => &mut hist.subscribe,
                                _ => &mut hist.unsubscribe,
                            };
                            timed_call(client, &req, slot, &mut busy)?;
                        }
                        Ok((hist, busy))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect::<Vec<_>>()
        });
        for result in results {
            let (hist, busy) = result?;
            ops.merge(&hist);
            busy_retries += busy;
        }

        // The epoch's alert, alternating the serial and batch paths.
        let cells: Vec<u64> = epoch.alert_cells.iter().map(|&c| c as u64).collect();
        let (req, slot) = if epoch_idx % 2 == 0 {
            (Request::Alert { cells }, &mut ops.alert)
        } else {
            (
                Request::BatchAlert {
                    chunk_size: 0,
                    cells,
                },
                &mut ops.batch_alert,
            )
        };
        let resp = timed_call(&mut clients[0], &req, slot, &mut busy_retries)?;
        if let Response::Alerted { notified, .. } = resp {
            let zone: BTreeSet<usize> = epoch.alert_cells.iter().copied().collect();
            let expected: Vec<u64> = workload
                .positions_after(epoch_idx)
                .into_iter()
                .filter(|(_, cell)| zone.contains(cell))
                .map(|(user_id, _)| user_id)
                .collect();
            alerts_checked += 1;
            if notified != expected {
                mismatches += 1;
            }
        }
    }

    let resp = timed_call(
        &mut clients[0],
        &Request::Stats,
        &mut ops.stats,
        &mut busy_retries,
    )?;
    let elapsed = started.elapsed();
    let server_stats = match resp {
        Response::Stats(stats) => stats,
        other => {
            return Err(SlaError::Protocol {
                detail: format!("stats RPC answered {other:?}"),
            })
        }
    };

    if config.send_shutdown {
        match clients[0].call(&Request::Shutdown)? {
            Response::ShuttingDown => {}
            other => {
                return Err(SlaError::Protocol {
                    detail: format!("shutdown RPC answered {other:?}"),
                })
            }
        }
    }

    Ok(ReplayReport {
        ops,
        elapsed,
        busy_retries,
        mismatches,
        alerts_checked,
        server_stats,
    })
}

// ---------------------------------------------------------------------------
// The BENCH_service.json rendering (schema v1)
// ---------------------------------------------------------------------------

fn op_json(name: &str, hist: &LatencyHistogram) -> String {
    format!(
        concat!(
            "    \"{}\": {{\"count\": {}, \"min_ns\": {}, \"mean_ns\": {:.0}, ",
            "\"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}"
        ),
        name,
        hist.count(),
        hist.min(),
        hist.mean(),
        hist.quantile(0.50),
        hist.quantile(0.99),
        hist.quantile(0.999),
        hist.max(),
    )
}

/// Renders the report as the `results/BENCH_service.json` document
/// (schema `sla-service-bench/v1`): run parameters, throughput,
/// per-op latency (fixed-bucket histogram quantiles, nanoseconds,
/// conservative upper bounds), and the server's own counters.
pub fn render_json(config: &ReplayConfig, report: &ReplayReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sla-service-bench/v1\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"endpoint\": \"{}\", \"threads\": {}, \"users\": {}, \"epochs\": {}, \"seed\": {}, \"scenario\": {}}},\n",
        config.endpoint,
        config.threads,
        config.users,
        config.epochs,
        config.seed,
        config
            .scenario
            .map_or("null".to_string(), |k| format!("\"{k}\"")),
    ));
    out.push_str(&format!(
        "  \"elapsed_s\": {:.6},\n  \"total_ops\": {},\n  \"throughput_ops_per_s\": {:.1},\n",
        report.elapsed.as_secs_f64(),
        report.ops.total(),
        report.throughput()
    ));
    out.push_str(&format!(
        "  \"busy_retries\": {},\n  \"alerts_checked\": {},\n  \"mismatches\": {},\n",
        report.busy_retries, report.alerts_checked, report.mismatches
    ));
    out.push_str("  \"ops\": {\n");
    let rendered: Vec<String> = [
        ("subscribe", &report.ops.subscribe),
        ("unsubscribe", &report.ops.unsubscribe),
        ("alert", &report.ops.alert),
        ("batch_alert", &report.ops.batch_alert),
        ("stats", &report.ops.stats),
    ]
    .iter()
    .map(|(name, hist)| op_json(name, hist))
    .collect();
    out.push_str(&rendered.join(",\n"));
    out.push_str("\n  },\n");
    let s = &report.server_stats;
    out.push_str(&format!(
        concat!(
            "  \"server\": {{\"backend\": \"{}\", \"shards\": {}, \"subscriptions\": {}, ",
            "\"inserted\": {}, \"replaced\": {}, \"unsubscribed\": {}, \"evicted\": {}, ",
            "\"recovered_epoch\": {}, \"ops_subscribe\": {}, \"ops_unsubscribe\": {}, ",
            "\"ops_alert\": {}, \"ops_stats\": {}, \"busy_rejections\": {}, ",
            "\"tokens_regenerated\": {}, \"cells_entered\": {}, \"cells_exited\": {}, ",
            "\"durability_lanes\": [{}]}}\n"
        ),
        s.backend,
        s.shards,
        s.subscriptions,
        s.inserted,
        s.replaced,
        s.unsubscribed,
        s.evicted,
        s.recovered_epoch
            .map_or("null".to_string(), |e| e.to_string()),
        s.ops_subscribe,
        s.ops_unsubscribe,
        s.ops_alert,
        s.ops_stats,
        s.busy_rejections,
        s.tokens_regenerated,
        s.cells_entered,
        s.cells_exited,
        s.lanes
            .iter()
            .map(|l| format!(
                "{{\"wal_generation\": {}, \"depth\": {}}}",
                l.wal_generation, l.depth
            ))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_server::WireLaneStats;

    #[test]
    fn workload_generation_is_deterministic() {
        let config = ReplayConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
            threads: 2,
            users: 24,
            epochs: 2,
            seed: 7,
            scenario: None,
            send_shutdown: false,
        };
        let a = generate_workload(&config);
        let b = generate_workload(&config);
        assert_eq!(a, b);
        assert_eq!(a.epochs.len(), 1 + config.epochs);
        assert!(a.n_events() >= config.users as usize);
    }

    #[test]
    fn scenario_workload_is_deterministic_and_moves_the_zone() {
        let config = ReplayConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
            threads: 2,
            users: 24,
            epochs: 3,
            seed: 7,
            scenario: Some(ScenarioKind::Moving),
            send_shutdown: false,
        };
        let a = generate_workload(&config);
        let b = generate_workload(&config);
        assert_eq!(a, b);
        assert_eq!(a.epochs.len(), 1 + config.epochs);
        // The storm track drifts, so consecutive epochs alert over
        // different cell sets — the property the wire replay exists to
        // exercise end-to-end.
        assert!(a
            .epochs
            .windows(2)
            .any(|w| w[0].alert_cells != w[1].alert_cells));
        // And the scenario differs from the static-zone default.
        let static_config = ReplayConfig {
            scenario: None,
            ..config
        };
        assert_ne!(a, generate_workload(&static_config));
    }

    #[test]
    fn json_report_has_the_v1_shape() {
        let config = ReplayConfig {
            endpoint: Endpoint::Unix("/tmp/x.sock".into()),
            threads: 2,
            users: 24,
            epochs: 2,
            seed: 7,
            scenario: None,
            send_shutdown: true,
        };
        let mut ops = OpHistograms::default();
        ops.subscribe.record(1_000);
        ops.subscribe.record(2_000);
        ops.alert.record(5_000_000);
        let report = ReplayReport {
            ops,
            elapsed: Duration::from_millis(125),
            busy_retries: 3,
            mismatches: 0,
            alerts_checked: 3,
            server_stats: WireStats {
                backend: "persistent".into(),
                shards: 8,
                subscriptions: 20,
                epoch: 0,
                inserted: 24,
                replaced: 5,
                unsubscribed: 4,
                evicted: 0,
                recovered_epoch: None,
                ops_subscribe: 29,
                ops_unsubscribe: 4,
                ops_alert: 3,
                ops_stats: 1,
                busy_rejections: 3,
                tokens_regenerated: 0,
                cells_entered: 0,
                cells_exited: 0,
                lanes: vec![
                    WireLaneStats {
                        wal_generation: 2,
                        depth: 0,
                    },
                    WireLaneStats {
                        wal_generation: 1,
                        depth: 7,
                    },
                ],
            },
        };
        let json = render_json(&config, &report);
        for needle in [
            "\"schema\": \"sla-service-bench/v1\"",
            "\"subscribe\": {\"count\": 2",
            "\"p999_ns\":",
            "\"recovered_epoch\": null",
            "\"durability_lanes\": [{\"wal_generation\": 2, \"depth\": 0}, {\"wal_generation\": 1, \"depth\": 7}]",
            "\"mismatches\": 0",
            "unix:///tmp/x.sock",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces — cheap well-formedness check without a JSON
        // parser in the dependency set.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
    }
}
