//! `sla-loadgen` — replays a churn workload against a running
//! `sla-server` and writes `results/BENCH_service.json`.
//!
//! ```text
//! sla-loadgen --socket /tmp/sla.sock --threads 4 --users 200 --epochs 6
//! sla-loadgen --tcp 127.0.0.1:4240 --shutdown
//! sla-loadgen --socket /tmp/sla.sock --smoke     # small run; implies --shutdown
//! sla-loadgen --tcp 127.0.0.1:4240 --scenario moving   # storm-track replay
//! ```
//!
//! Exit codes: `0` clean (all alert notified-sets matched ground
//! truth), `1` on replay/transport failure or any mismatch, `2` on a
//! malformed command line.

use sla_loadgen::{render_json, replay, Endpoint, ReplayConfig};
use sla_scenarios::ScenarioKind;
use std::path::PathBuf;

struct Opts {
    config: ReplayConfig,
    out: PathBuf,
}

/// Typed rejection of a malformed command line.
#[derive(Debug)]
enum ArgError {
    MissingValue(&'static str),
    Invalid(&'static str, String),
    Endpoint,
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ArgError::Invalid(flag, v) => write!(f, "{flag}: invalid value '{v}'"),
            ArgError::Endpoint => write!(
                f,
                "exactly one endpoint is required: --socket <path> or --tcp <addr>"
            ),
            ArgError::Unknown(flag) => write!(f, "unknown flag '{flag}' (see --help)"),
        }
    }
}

impl std::error::Error for ArgError {}

const USAGE: &str = "\
sla-loadgen — churn-workload replay against sla-server

USAGE:
    sla-loadgen (--socket <path> | --tcp <addr>) [options]

OPTIONS:
    --socket <path>   Connect to a Unix-domain socket
    --tcp <addr>      Connect over TCP, e.g. 127.0.0.1:4240
    --threads <n>     Client threads / connections (default 4)
    --users <n>       Initial population (default 200)
    --epochs <n>      Churn epochs after the initial wave (default 6)
    --seed <n>        Workload seed (default 20210323)
    --scenario <kind> Replay a scenario workload: moving, burst, mixed, zipf
    --out <path>      Report path (default results/BENCH_service.json)
    --shutdown        Send a shutdown RPC when done
    --smoke           Small CI run: 24 users, 2 epochs, 2 threads; implies --shutdown
    --help            This text";

fn parse_number<T: std::str::FromStr>(
    flag: &'static str,
    value: Option<String>,
) -> Result<T, ArgError> {
    let v = value.ok_or(ArgError::MissingValue(flag))?;
    v.parse().map_err(|_| ArgError::Invalid(flag, v))
}

fn parse_opts(args: impl Iterator<Item = String>) -> Result<Option<Opts>, ArgError> {
    let mut socket = None;
    let mut tcp = None;
    let mut threads = None;
    let mut users = None;
    let mut epochs = None;
    let mut seed = 20_210_323u64;
    let mut scenario = None;
    let mut out = PathBuf::from("results/BENCH_service.json");
    let mut shutdown = false;
    let mut smoke = false;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--socket" => socket = Some(args.next().ok_or(ArgError::MissingValue("--socket"))?),
            "--tcp" => tcp = Some(args.next().ok_or(ArgError::MissingValue("--tcp"))?),
            "--threads" => threads = Some(parse_number("--threads", args.next())?),
            "--users" => users = Some(parse_number("--users", args.next())?),
            "--epochs" => epochs = Some(parse_number("--epochs", args.next())?),
            "--seed" => seed = parse_number("--seed", args.next())?,
            "--scenario" => {
                let v = args.next().ok_or(ArgError::MissingValue("--scenario"))?;
                scenario = Some(
                    v.parse::<ScenarioKind>()
                        .map_err(|_| ArgError::Invalid("--scenario", v))?,
                );
            }
            "--out" => out = PathBuf::from(args.next().ok_or(ArgError::MissingValue("--out"))?),
            "--shutdown" => shutdown = true,
            "--smoke" => smoke = true,
            other => return Err(ArgError::Unknown(other.to_string())),
        }
    }
    let endpoint = match (socket, tcp) {
        (Some(path), None) => Endpoint::Unix(PathBuf::from(path)),
        (None, Some(addr)) => Endpoint::Tcp(addr),
        _ => return Err(ArgError::Endpoint),
    };
    // Smoke shrinks every knob the user did not set explicitly, and
    // always drains the server so CI can assert a clean exit.
    let (d_threads, d_users, d_epochs) = if smoke { (2, 24, 2) } else { (4, 200, 6) };
    Ok(Some(Opts {
        config: ReplayConfig {
            endpoint,
            threads: threads.unwrap_or(d_threads),
            users: users.unwrap_or(d_users),
            epochs: epochs.unwrap_or(d_epochs),
            seed,
            scenario,
            send_shutdown: shutdown || smoke,
        },
        out,
    }))
}

fn run(opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    let report = replay(&opts.config)?;

    println!(
        "replayed {} ops in {:.3}s over {} ({:.0} op/s, {} busy retries)",
        report.ops.total(),
        report.elapsed.as_secs_f64(),
        opts.config.endpoint,
        report.throughput(),
        report.busy_retries,
    );
    for (name, hist) in [
        ("subscribe", &report.ops.subscribe),
        ("unsubscribe", &report.ops.unsubscribe),
        ("alert", &report.ops.alert),
        ("batch_alert", &report.ops.batch_alert),
        ("stats", &report.ops.stats),
    ] {
        if hist.count() == 0 {
            continue;
        }
        println!(
            "  {name:<12} n={:<6} p50={:>9}ns p99={:>9}ns p999={:>9}ns max={:>9}ns",
            hist.count(),
            hist.quantile(0.50),
            hist.quantile(0.99),
            hist.quantile(0.999),
            hist.max(),
        );
    }
    println!(
        "  alerts verified against ground truth: {}/{} matched",
        report.alerts_checked - report.mismatches,
        report.alerts_checked,
    );

    if let Some(parent) = opts.out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&opts.out, render_json(&opts.config, &report))?;
    println!("wrote {}", opts.out.display());

    if report.mismatches > 0 {
        return Err(format!(
            "{} of {} alert notified-sets disagreed with plaintext ground truth",
            report.mismatches, report.alerts_checked
        )
        .into());
    }
    Ok(())
}

fn main() {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("sla-loadgen: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&opts) {
        eprintln!("sla-loadgen: {e}");
        std::process::exit(1);
    }
}
