//! # sla-loadgen
//!
//! Load generator and end-to-end checker for the `sla-server` service
//! plane: replays `sla-datasets` churn workloads over the wire with N
//! client threads, verifies every alert's notified set against the
//! workload's plaintext ground truth, and records client-observed
//! latency (p50/p99/p999 per op kind, via `sla-bench`'s fixed-bucket
//! histogram) plus throughput into `results/BENCH_service.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod replay;

pub use client::{Client, Endpoint};
pub use replay::{
    generate_workload, render_json, replay, OpHistograms, ReplayConfig, ReplayReport,
};
