//! [`ZoneTracker`]: per-zone state for incremental token regeneration
//! across epochs of a dynamic alert zone.
//!
//! A moving or resizing zone re-issues its tokens every epoch. Most of
//! the minimized pattern set survives a small cell delta, so the tracked
//! alert path ([`crate::AlertSystem::issue_alert_tracked`]) keeps one
//! tracker per live zone: a pattern-keyed [`TokenCache`] plus the
//! previous epoch's cell set, from which it derives the entered/exited
//! cell counts reported through [`crate::ServiceStats`].

use sla_hve::TokenCache;

use crate::system::AlertOutcome;

/// Per-zone regeneration state: the token cache and the previous epoch's
/// (sorted, deduplicated) cell set. One tracker follows one zone; using
/// the same tracker for unrelated zones is safe but defeats reuse.
#[derive(Debug, Default)]
pub struct ZoneTracker {
    cache: TokenCache,
    prev_cells: Vec<usize>,
}

/// Regeneration counters for one tracked alert epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenRegenStats {
    /// Tokens freshly generated this epoch (pattern-cache misses).
    pub tokens_generated: u64,
    /// Tokens served from the cache without group operations.
    pub tokens_reused: u64,
    /// Cached tokens evicted because their pattern left the zone's cover.
    pub tokens_evicted: u64,
    /// Cells present this epoch but not the previous one.
    pub cells_entered: u64,
    /// Cells present the previous epoch but not this one.
    pub cells_exited: u64,
}

/// Outcome of one tracked alert epoch: the ordinary [`AlertOutcome`]
/// (identical to a full regeneration's in notified set, token count and
/// pairing cost) plus the epoch's regeneration counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackedAlertOutcome {
    /// The alert outcome — equal to [`crate::AlertSystem::issue_alert`]
    /// over the same cells and store contents.
    pub alert: AlertOutcome,
    /// What the incremental path saved (and spent) this epoch.
    pub regen: TokenRegenStats,
}

impl ZoneTracker {
    /// A fresh tracker: the first tracked alert regenerates everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached tokens (the previous epoch's pattern count).
    pub fn cached_tokens(&self) -> usize {
        self.cache.len()
    }

    /// The previous epoch's cell set (sorted, deduplicated).
    pub fn prev_cells(&self) -> &[usize] {
        &self.prev_cells
    }

    pub(crate) fn cache_mut(&mut self) -> &mut TokenCache {
        &mut self.cache
    }

    /// Records this epoch's cell set and returns `(entered, exited)`
    /// counts against the previous one.
    pub(crate) fn note_cells(&mut self, cells: &[usize]) -> (u64, u64) {
        let mut now: Vec<usize> = cells.to_vec();
        now.sort_unstable();
        now.dedup();
        let entered = now
            .iter()
            .filter(|c| self.prev_cells.binary_search(c).is_err())
            .count() as u64;
        let exited = self
            .prev_cells
            .iter()
            .filter(|c| now.binary_search(c).is_err())
            .count() as u64;
        self.prev_cells = now;
        (entered, exited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_delta_counts() {
        let mut t = ZoneTracker::new();
        assert_eq!(t.note_cells(&[3, 1, 2, 2]), (3, 0));
        assert_eq!(t.prev_cells(), &[1, 2, 3]);
        assert_eq!(t.note_cells(&[2, 3, 4]), (1, 1));
        assert_eq!(t.note_cells(&[]), (0, 3));
        assert_eq!(t.note_cells(&[7]), (1, 0));
    }
}
