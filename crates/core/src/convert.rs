//! Conversions between the encoding crate's code types and the HVE
//! crate's vector types.

use sla_encoding::{BitString, Codeword, Symbol};
use sla_hve::{AttributeVector, SearchPattern};

/// A grid index becomes the HVE attribute vector the user encrypts.
pub fn index_to_attribute(index: &BitString) -> AttributeVector {
    AttributeVector::from_bits(index.bits())
}

/// A minimized token codeword becomes the HVE search pattern the TA signs
/// into a token.
pub fn codeword_to_pattern(codeword: &Codeword) -> SearchPattern {
    let symbols: Vec<Option<bool>> = codeword
        .symbols()
        .iter()
        .map(|s| match s {
            Symbol::Zero => Some(false),
            Symbol::One => Some(true),
            Symbol::Star => None,
        })
        .collect();
    SearchPattern::from_symbols(&symbols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_roundtrip() {
        let idx = BitString::parse("10110");
        let attr = index_to_attribute(&idx);
        assert_eq!(attr.to_string(), "10110");
    }

    #[test]
    fn pattern_preserves_stars() {
        let cw = Codeword::parse("1*0*");
        let pat = codeword_to_pattern(&cw);
        assert_eq!(pat.to_string(), "1*0*");
        assert_eq!(pat.non_star_count(), 2);
    }

    #[test]
    fn matching_semantics_agree() {
        // encoding-level matching and HVE-pattern matching coincide
        for (cw, idx) in [("1*0", "100"), ("1*0", "110"), ("*00", "000")] {
            let codeword = Codeword::parse(cw);
            let index = BitString::parse(idx);
            let expected = codeword.matches(&index);
            let got = codeword_to_pattern(&codeword).matches(&index_to_attribute(&index));
            assert_eq!(expected, got, "cw {cw} idx {idx}");
        }
    }
}
