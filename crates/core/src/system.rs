//! [`AlertSystem`]: owns the bilinear group and wires the three parties
//! together for end-to-end runs.

use crate::entities::{MobileUser, ServiceProvider, Subscription, TrustedAuthority};
use rand::Rng;
use sla_encoding::{CellCodebook, EncoderKind};
use sla_grid::{Grid, Point, ProbabilityMap};
use sla_hve::{HveScheme, PreparedPublicKey, PublicKey};
use sla_pairing::{BilinearGroup, SimulatedGroup};

/// System-wide configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The spatial grid.
    pub grid: Grid,
    /// The cell-encoding scheme (the paper's proposal or a baseline).
    pub encoder: EncoderKind,
    /// Bit length of each prime factor of the group order (48–64 is ample
    /// for simulation; see `sla-pairing` docs).
    pub group_bits: usize,
}

/// Result of issuing one alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertOutcome {
    /// Users found inside the alert zone.
    pub notified: Vec<u64>,
    /// Number of tokens the TA issued after minimization.
    pub tokens_issued: usize,
    /// Total non-star bits across the issued tokens.
    pub non_star_bits: u64,
    /// Pairings actually performed by the SP (live engine counter delta).
    pub pairings_used: u64,
    /// Pairings predicted by the analytic cost model
    /// `Σ_tokens (1 + 2·|J|) · n_ciphertexts`; the test-suite asserts this
    /// equals [`AlertOutcome::pairings_used`].
    pub analytic_pairings: u64,
}

/// The assembled system: group engine + TA + SP + codebook.
///
/// Setup also builds the fixed-base tables for both halves of the key
/// pair (the prepared public key lives here, the prepared secret key in
/// the TA), so every subscription encryption and every token issuance
/// reuses the per-base precomputation.
#[derive(Debug)]
pub struct AlertSystem {
    group: SimulatedGroup,
    grid: Grid,
    /// The public key plus its fixed-base tables, reused by every
    /// subscription (the plain key is a view into this).
    ppk: PreparedPublicKey,
    ta: TrustedAuthority,
    sp: ServiceProvider,
}

impl AlertSystem {
    /// Runs system initialization (Fig. 3): build the codebook from the
    /// probability map, generate the group and the HVE key pair, and
    /// prepare the fixed-base tables for both keys.
    ///
    /// # Panics
    /// Panics if the probability map does not cover the grid.
    pub fn setup<R: Rng>(config: SystemConfig, probs: &ProbabilityMap, rng: &mut R) -> Self {
        assert_eq!(
            probs.len(),
            config.grid.n_cells(),
            "probability map must cover the grid"
        );
        let codebook = CellCodebook::build(config.encoder, probs.raw());
        let group = SimulatedGroup::generate(config.group_bits, rng);
        let scheme = HveScheme::new(&group, codebook.width_bits());
        let (pk, sk) = scheme.setup(rng);
        let ppk = scheme.prepare_public_key(&pk);
        let mut ta = TrustedAuthority::new(sk, codebook);
        ta.prepare(&scheme);
        AlertSystem {
            group,
            grid: config.grid,
            ppk,
            ta,
            sp: ServiceProvider::new(),
        }
    }

    /// The grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The public codebook.
    pub fn codebook(&self) -> &CellCodebook {
        self.ta.codebook()
    }

    /// The HVE public key (what a real deployment would publish).
    pub fn public_key(&self) -> &PublicKey {
        self.ppk.public_key()
    }

    /// The group's operation counters.
    pub fn counters(&self) -> &sla_pairing::OpCounters {
        self.group.counters()
    }

    /// Number of stored location updates.
    pub fn n_subscriptions(&self) -> usize {
        self.sp.n_subscriptions()
    }

    fn scheme(&self) -> HveScheme<'_, SimulatedGroup> {
        HveScheme::new(&self.group, self.codebook().width_bits())
    }

    /// A user at `cell` encrypts and submits a location update.
    ///
    /// # Panics
    /// Panics if `cell` is out of range.
    pub fn subscribe_cell<R: Rng>(&mut self, user_id: u64, cell: usize, rng: &mut R) {
        assert!(cell < self.grid.n_cells(), "cell out of range");
        let user = MobileUser::new(user_id, cell);
        let scheme = self.scheme();
        let ct = user.encrypt_update_prepared(&scheme, &self.ppk, self.ta.codebook(), rng);
        self.sp.accept_update(Subscription {
            user_id,
            ciphertext: ct,
        });
    }

    /// A user at a geographic point subscribes; returns `false` (no-op)
    /// when the point lies outside the grid.
    pub fn subscribe_point<R: Rng>(&mut self, user_id: u64, point: &Point, rng: &mut R) -> bool {
        match self.grid.cell_of(point) {
            Some(cell) => {
                self.subscribe_cell(user_id, cell.0, rng);
                true
            }
            None => false,
        }
    }

    /// Shared alert pipeline: token issuance, analytic cost, counter
    /// bracketing and outcome assembly; `match_fn` supplies the matching
    /// strategy, which is the only difference between the serial and
    /// batch entry points (keeping their outcomes identical by
    /// construction).
    fn issue_alert_with<R: Rng>(
        &mut self,
        alert_cells: &[usize],
        rng: &mut R,
        match_fn: impl FnOnce(
            &ServiceProvider,
            &HveScheme<'_, SimulatedGroup>,
            &[sla_hve::Token],
        ) -> Vec<u64>,
    ) -> AlertOutcome {
        let scheme = self.scheme();
        let tokens = self.ta.issue_tokens(&scheme, alert_cells, rng);
        let non_star_bits: u64 = tokens.iter().map(|t| t.non_star_count() as u64).sum();
        let analytic = self
            .ta
            .analytic_pairing_cost(alert_cells, self.sp.n_subscriptions() as u64);

        let before = self.group.counters().snapshot();
        let mut notified = match_fn(&self.sp, &scheme, &tokens);
        let delta = self.group.counters().snapshot() - before;
        notified.sort_unstable();

        AlertOutcome {
            notified,
            tokens_issued: tokens.len(),
            non_star_bits,
            pairings_used: delta.pairings,
            analytic_pairings: analytic,
        }
    }

    /// Issues an alert for a set of cells: the TA minimizes and signs
    /// tokens, the SP evaluates them exhaustively (the cost model's
    /// regime), and matched users are notified.
    pub fn issue_alert<R: Rng>(&mut self, alert_cells: &[usize], rng: &mut R) -> AlertOutcome {
        self.issue_alert_with(alert_cells, rng, |sp, scheme, tokens| {
            sp.match_alert_exhaustive(scheme, tokens)
        })
    }

    /// Analytic pairing cost of an alert against the current store,
    /// without performing any cryptography.
    pub fn analytic_cost(&self, alert_cells: &[usize]) -> u64 {
        self.ta
            .analytic_pairing_cost(alert_cells, self.sp.n_subscriptions() as u64)
    }

    /// Batch variant of [`Self::issue_alert`]: the SP evaluates the token
    /// set over chunks of the ciphertext store in parallel via
    /// [`ServiceProvider::process_alert_batch`].
    ///
    /// `chunk_size` of `None` picks a per-core default. The outcome is
    /// **identical** to [`Self::issue_alert`] for the same tokens — same
    /// `notified`, `tokens_issued`, `pairings_used` — which the
    /// `batch_matching` integration tests assert.
    pub fn issue_alert_batch<R: Rng>(
        &mut self,
        alert_cells: &[usize],
        chunk_size: Option<usize>,
        rng: &mut R,
    ) -> AlertOutcome {
        self.issue_alert_with(alert_cells, rng, |sp, scheme, tokens| {
            let chunk = chunk_size.unwrap_or_else(|| sp.default_batch_chunk_size());
            sp.process_alert_batch(scheme, tokens, chunk)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_grid::BoundingBox;

    fn small_system(encoder: EncoderKind) -> (AlertSystem, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xa1e47);
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 3);
        let probs = ProbabilityMap::new(vec![0.3, 0.1, 0.25, 0.05, 0.2, 0.1]);
        let system = AlertSystem::setup(
            SystemConfig {
                grid,
                encoder,
                group_bits: 40,
            },
            &probs,
            &mut rng,
        );
        (system, rng)
    }

    #[test]
    fn end_to_end_notifications_all_encoders() {
        for encoder in [
            EncoderKind::Huffman,
            EncoderKind::Balanced,
            EncoderKind::BasicFixed,
            EncoderKind::GraySgo,
            EncoderKind::BaryHuffman(3),
        ] {
            let (mut system, mut rng) = small_system(encoder);
            // users 0..6, one per cell
            for cell in 0..6 {
                system.subscribe_cell(100 + cell as u64, cell, &mut rng);
            }
            let outcome = system.issue_alert(&[1, 4], &mut rng);
            assert_eq!(outcome.notified, vec![101, 104], "{:?}", encoder);
            assert_eq!(
                outcome.pairings_used, outcome.analytic_pairings,
                "{encoder:?}: live counter must equal analytic model"
            );
        }
    }

    #[test]
    fn alert_on_empty_store_costs_nothing() {
        let (mut system, mut rng) = small_system(EncoderKind::Huffman);
        let outcome = system.issue_alert(&[0], &mut rng);
        assert!(outcome.notified.is_empty());
        assert_eq!(outcome.pairings_used, 0);
        assert_eq!(outcome.analytic_pairings, 0);
        assert!(outcome.tokens_issued > 0);
    }

    #[test]
    fn multiple_users_same_cell() {
        let (mut system, mut rng) = small_system(EncoderKind::Huffman);
        for id in [1u64, 2, 3] {
            system.subscribe_cell(id, 2, &mut rng);
        }
        system.subscribe_cell(4, 0, &mut rng);
        let outcome = system.issue_alert(&[2], &mut rng);
        assert_eq!(outcome.notified, vec![1, 2, 3]);
    }

    #[test]
    fn subscribe_by_point() {
        let (mut system, mut rng) = small_system(EncoderKind::Huffman);
        let inside = system.grid().cell_center(sla_grid::CellId(5));
        assert!(system.subscribe_point(42, &inside, &mut rng));
        assert!(!system.subscribe_point(43, &Point::new(50.0, 50.0), &mut rng));
        assert_eq!(system.n_subscriptions(), 1);
        let outcome = system.issue_alert(&[5], &mut rng);
        assert_eq!(outcome.notified, vec![42]);
    }

    #[test]
    fn full_zone_alert_notifies_everyone() {
        let (mut system, mut rng) = small_system(EncoderKind::Huffman);
        for cell in 0..6 {
            system.subscribe_cell(cell as u64, cell, &mut rng);
        }
        let outcome = system.issue_alert(&[0, 1, 2, 3, 4, 5], &mut rng);
        assert_eq!(outcome.notified, vec![0, 1, 2, 3, 4, 5]);
        // whole grid minimizes to very few tokens (root subtree(s))
        assert!(outcome.tokens_issued <= 2, "{}", outcome.tokens_issued);
    }

    #[test]
    fn doc_example_runs() {
        // mirror of the lib.rs doctest, kept as a unit test for coverage
        let mut rng = StdRng::seed_from_u64(1);
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 2);
        let probs = ProbabilityMap::new(vec![0.4, 0.1, 0.3, 0.2]);
        let mut system = AlertSystem::setup(
            SystemConfig {
                grid,
                encoder: EncoderKind::Huffman,
                group_bits: 48,
            },
            &probs,
            &mut rng,
        );
        system.subscribe_cell(7, 0, &mut rng);
        system.subscribe_cell(9, 3, &mut rng);
        let outcome = system.issue_alert(&[0, 1], &mut rng);
        assert_eq!(outcome.notified, vec![7]);
        assert_eq!(outcome.pairings_used, outcome.analytic_pairings);
    }
}
