//! [`SystemBuilder`] / [`AlertSystem`]: owns the bilinear group and wires
//! the three parties together for long-lived service runs.

use crate::convert::index_to_attribute;
use crate::entities::{MobileUser, ServiceProvider, Subscription, TrustedAuthority};
use crate::error::{SlaError, SlaResult, MAX_GROUP_BITS, MIN_GROUP_BITS};
use crate::store::{StoreBackend, StoreStats, UpsertOutcome};
use crate::tracker::{TokenRegenStats, TrackedAlertOutcome, ZoneTracker};
use rand::Rng;
use sla_encoding::{CellCodebook, EncoderKind};
use sla_grid::{Grid, Point, ProbabilityMap};
use sla_hve::{HveScheme, PreparedPublicKey, PublicKey};
use sla_pairing::{BilinearGroup, SimulatedGroup};

/// Fallible, defaults-first constructor for [`AlertSystem`].
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sla_core::{AlertSystem, StoreBackend, SystemBuilder};
/// use sla_encoding::EncoderKind;
/// use sla_grid::{BoundingBox, Grid, ProbabilityMap};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 2);
/// let probs = ProbabilityMap::new(vec![0.4, 0.1, 0.3, 0.2]);
/// let mut system = SystemBuilder::new(grid)
///     .encoder(EncoderKind::Huffman)
///     .group_bits(48)
///     .store(StoreBackend::Sharded { shards: 4 })
///     .ttl_epochs(24)
///     .build(&probs, &mut rng)
///     .expect("valid configuration");
/// system.subscribe_cell(7, 0, &mut rng).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    grid: Grid,
    encoder: EncoderKind,
    group_bits: usize,
    store: StoreBackend,
    ttl_epochs: Option<u64>,
}

impl SystemBuilder {
    /// Starts a builder over `grid` with the paper's defaults: Huffman
    /// encoding, 48-bit prime factors, a contiguous store, no TTL.
    pub fn new(grid: Grid) -> Self {
        SystemBuilder {
            grid,
            encoder: EncoderKind::Huffman,
            group_bits: 48,
            store: StoreBackend::Contiguous,
            ttl_epochs: None,
        }
    }

    /// The cell-encoding scheme (the paper's proposal or a baseline).
    pub fn encoder(mut self, encoder: EncoderKind) -> Self {
        self.encoder = encoder;
        self
    }

    /// Bit length of each prime factor of the group order (validated at
    /// [`Self::build`] against `[MIN_GROUP_BITS, MAX_GROUP_BITS]`).
    pub fn group_bits(mut self, bits: usize) -> Self {
        self.group_bits = bits;
        self
    }

    /// The Service Provider's subscription-store backend.
    pub fn store(mut self, backend: StoreBackend) -> Self {
        self.store = backend;
        self
    }

    /// Enables TTL eviction: a subscription not refreshed within
    /// `epochs` service epochs is dropped by
    /// [`AlertSystem::advance_epoch`].
    pub fn ttl_epochs(mut self, epochs: u64) -> Self {
        self.ttl_epochs = Some(epochs);
        self
    }

    /// Runs system initialization (Fig. 3): build the codebook from the
    /// probability map, generate the group and the HVE key pair, prepare
    /// the fixed-base tables for both keys, and assemble the Service
    /// Provider over the chosen store backend.
    ///
    /// Every misconfiguration returns a typed [`SlaError`]:
    /// `ProbabilityMapMismatch` when the surface does not cover the grid,
    /// `InvalidCodebook`/`InvalidLikelihoods` for unusable surfaces,
    /// `InvalidGroupBits` and `ZeroShardCount` for bad parameters.
    pub fn build<R: Rng>(self, probs: &ProbabilityMap, rng: &mut R) -> SlaResult<AlertSystem> {
        if probs.len() != self.grid.n_cells() {
            return Err(SlaError::ProbabilityMapMismatch {
                map_cells: probs.len(),
                grid_cells: self.grid.n_cells(),
            });
        }
        if !(MIN_GROUP_BITS..=MAX_GROUP_BITS).contains(&self.group_bits) {
            return Err(SlaError::InvalidGroupBits {
                bits: self.group_bits,
            });
        }
        let sp = ServiceProvider::with_backend(self.store, self.ttl_epochs)?;
        let codebook = CellCodebook::try_build(self.encoder, probs.raw())?;
        let group = SimulatedGroup::generate(self.group_bits, rng);
        let scheme = HveScheme::try_new(&group, codebook.width_bits())?;
        let (pk, sk) = scheme.setup(rng);
        let ppk = scheme.prepare_public_key(&pk);
        let mut ta = TrustedAuthority::new(sk, codebook)?;
        ta.prepare(&scheme);
        Ok(AlertSystem {
            group,
            grid: self.grid,
            ppk,
            ta,
            sp,
        })
    }
}

/// Result of issuing one alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertOutcome {
    /// Users found inside the alert zone.
    pub notified: Vec<u64>,
    /// Number of tokens the TA issued after minimization.
    pub tokens_issued: usize,
    /// Total non-star bits across the issued tokens.
    pub non_star_bits: u64,
    /// Pairings actually performed by the SP (live engine counter delta).
    pub pairings_used: u64,
    /// Pairings predicted by the analytic cost model
    /// `Σ_tokens (1 + 2·|J|) · n_ciphertexts`; the test-suite asserts this
    /// equals [`AlertOutcome::pairings_used`].
    pub analytic_pairings: u64,
}

/// The assembled system: group engine + TA + SP + codebook.
///
/// Build one through [`SystemBuilder`] (or [`AlertSystem::builder`]).
/// Setup also builds the fixed-base tables for both halves of the key
/// pair (the prepared public key lives here, the prepared secret key in
/// the TA), so every subscription encryption and every token issuance
/// reuses the per-base precomputation.
///
/// Every entry point that takes user-supplied input is fallible — no
/// panic is reachable through the public service API.
#[derive(Debug)]
pub struct AlertSystem {
    group: SimulatedGroup,
    grid: Grid,
    /// The public key plus its fixed-base tables, reused by every
    /// subscription (the plain key is a view into this).
    ppk: PreparedPublicKey,
    ta: TrustedAuthority,
    sp: ServiceProvider,
}

impl AlertSystem {
    /// Starts a [`SystemBuilder`] over `grid`.
    pub fn builder(grid: Grid) -> SystemBuilder {
        SystemBuilder::new(grid)
    }

    /// The grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The public codebook.
    pub fn codebook(&self) -> &CellCodebook {
        self.ta.codebook()
    }

    /// The HVE public key (what a real deployment would publish).
    pub fn public_key(&self) -> &PublicKey {
        self.ppk.public_key()
    }

    /// The group's operation counters.
    pub fn counters(&self) -> &sla_pairing::OpCounters {
        self.group.counters()
    }

    /// Number of stored location updates (one per live user).
    pub fn n_subscriptions(&self) -> usize {
        self.sp.n_subscriptions()
    }

    /// The current service epoch.
    pub fn epoch(&self) -> u64 {
        self.sp.epoch()
    }

    /// Snapshot of the SP's store layout and lifecycle counters.
    pub fn store_stats(&self) -> StoreStats {
        self.sp.stats()
    }

    /// One-call serving snapshot ([`ServiceProvider::service_stats`]):
    /// store stats plus the recovered epoch, read entirely from atomics
    /// through `&self` — the `stats` RPC of the service plane routes
    /// here, so answering it never takes a shard write lock.
    pub fn service_stats(&self) -> crate::ServiceStats {
        self.sp.service_stats()
    }

    /// `true` iff the store backend supports shared-reference mutation
    /// (`subscribe_cell_shared` / `unsubscribe_shared` /
    /// `advance_epoch_shared`) — what a multi-connection server needs to
    /// serve churn and matching concurrently.
    pub fn supports_shared_mutation(&self) -> bool {
        self.sp.supports_shared_mutation()
    }

    /// Every stored `(user_id, epoch)` pair, sorted — a cheap content
    /// fingerprint (see [`ServiceProvider::subscription_epochs`]).
    pub fn subscription_epochs(&self) -> Vec<(u64, u64)> {
        self.sp.subscription_epochs()
    }

    fn scheme(&self) -> HveScheme<'_, SimulatedGroup> {
        HveScheme::new(&self.group, self.codebook().width_bits())
    }

    /// Shared body of the subscribe entry points: validates the cell and
    /// encrypts the update under the prepared public key. Takes the
    /// fields explicitly (not `&self`) so `subscribe_cell` can keep a
    /// field-disjoint `&mut` borrow of the SP.
    fn encrypted_subscription<'g, R: Rng>(
        grid: &Grid,
        group: &'g SimulatedGroup,
        ppk: &PreparedPublicKey,
        ta: &TrustedAuthority,
        user_id: u64,
        cell: usize,
        rng: &mut R,
    ) -> SlaResult<(HveScheme<'g, SimulatedGroup>, Subscription)> {
        if cell >= grid.n_cells() {
            return Err(SlaError::CellOutOfRange {
                cell,
                n_cells: grid.n_cells(),
            });
        }
        let user = MobileUser::new(user_id, cell);
        let scheme = HveScheme::new(group, ta.codebook().width_bits());
        let ct = user.encrypt_update_prepared(&scheme, ppk, ta.codebook(), rng)?;
        Ok((
            scheme,
            Subscription {
                user_id,
                ciphertext: ct,
            },
        ))
    }

    /// A user at `cell` encrypts and submits a location update; a
    /// re-subscribing user's previous ciphertext is **replaced** (the old
    /// location stops matching alerts).
    ///
    /// Errors: `CellOutOfRange`, `MessageOutOfDomain` (ids double as HVE
    /// payloads and must fit the message domain).
    pub fn subscribe_cell<R: Rng>(
        &mut self,
        user_id: u64,
        cell: usize,
        rng: &mut R,
    ) -> SlaResult<UpsertOutcome> {
        let (scheme, subscription) = Self::encrypted_subscription(
            &self.grid,
            &self.group,
            &self.ppk,
            &self.ta,
            user_id,
            cell,
            rng,
        )?;
        self.sp.upsert(&scheme, subscription)
    }

    /// Bulk [`Self::subscribe_cell`]: encrypts every `(user_id, cell)`
    /// update in one [`HveScheme::encrypt_prepared_batch`] call, so the
    /// subscriptions' exponentiations run in lockstep through the
    /// engine's SIMD batch kernels. Ciphertext `j` is byte-identical to
    /// what the `j`-th serial `subscribe_cell` call would have stored
    /// against the same RNG, and outcomes are returned in request order.
    ///
    /// Validation is all-or-nothing: every request is checked
    /// (`CellOutOfRange`, `MessageOutOfDomain`) before any cryptography
    /// runs or any record is stored.
    pub fn subscribe_cells_bulk<R: Rng>(
        &mut self,
        requests: &[(u64, usize)],
        rng: &mut R,
    ) -> SlaResult<Vec<UpsertOutcome>> {
        let scheme = HveScheme::new(&self.group, self.ta.codebook().width_bits());
        let mut attrs = Vec::with_capacity(requests.len());
        let mut msgs = Vec::with_capacity(requests.len());
        for &(user_id, cell) in requests {
            if cell >= self.grid.n_cells() {
                return Err(SlaError::CellOutOfRange {
                    cell,
                    n_cells: self.grid.n_cells(),
                });
            }
            attrs.push(index_to_attribute(self.ta.codebook().index_of(cell)));
            msgs.push(scheme.try_encode_message(user_id)?);
        }
        let items: Vec<_> = attrs.iter().zip(msgs.iter()).collect();
        let cts = scheme.encrypt_prepared_batch(&self.ppk, &items, rng);
        requests
            .iter()
            .zip(cts)
            .map(|(&(user_id, _), ciphertext)| {
                let outcome = self.sp.upsert(
                    &scheme,
                    Subscription {
                        user_id,
                        ciphertext,
                    },
                )?;
                Ok(outcome)
            })
            .collect()
    }

    /// [`Self::subscribe_cell`] through a shared reference — the entry
    /// point concurrent writer threads use while an alert is being
    /// matched. Each caller supplies its own `rng`.
    ///
    /// Requires the `StoreBackend::ConcurrentSharded` backend;
    /// `Err(SlaError::StoreNotConcurrent)` otherwise. Other errors as
    /// [`Self::subscribe_cell`].
    pub fn subscribe_cell_shared<R: Rng>(
        &self,
        user_id: u64,
        cell: usize,
        rng: &mut R,
    ) -> SlaResult<UpsertOutcome> {
        let (scheme, subscription) = Self::encrypted_subscription(
            &self.grid,
            &self.group,
            &self.ppk,
            &self.ta,
            user_id,
            cell,
            rng,
        )?;
        self.sp.upsert_shared(&scheme, subscription)
    }

    /// [`Self::unsubscribe`] through a shared reference (see
    /// [`Self::subscribe_cell_shared`]).
    ///
    /// `Err(SlaError::StoreNotConcurrent)` on a non-concurrent backend,
    /// `Err(SlaError::UnknownUser)` when no subscription is stored.
    pub fn unsubscribe_shared(&self, user_id: u64) -> SlaResult<()> {
        self.sp.unsubscribe_shared(user_id)
    }

    /// A user at a geographic point subscribes;
    /// `Err(SlaError::PointOutsideGrid)` when the point lies outside the
    /// grid.
    pub fn subscribe_point<R: Rng>(
        &mut self,
        user_id: u64,
        point: &Point,
        rng: &mut R,
    ) -> SlaResult<UpsertOutcome> {
        match self.grid.cell_of(point) {
            Some(cell) => self.subscribe_cell(user_id, cell.0, rng),
            None => Err(SlaError::PointOutsideGrid {
                lat: point.lat,
                lon: point.lon,
            }),
        }
    }

    /// Removes a user's subscription;
    /// `Err(SlaError::UnknownUser)` when none is stored.
    pub fn unsubscribe(&mut self, user_id: u64) -> SlaResult<()> {
        self.sp.unsubscribe(user_id)
    }

    /// Advances the service epoch, evicting expired subscriptions when
    /// the builder configured a TTL. Returns how many were evicted.
    pub fn advance_epoch(&mut self) -> usize {
        self.sp.advance_epoch()
    }

    /// [`Self::advance_epoch`] through a shared reference — epoch
    /// advancement and TTL eviction can overlap churn and matching on a
    /// concurrent-capable backend.
    ///
    /// `Err(SlaError::StoreNotConcurrent)` on the exclusive backends.
    pub fn advance_epoch_shared(&self) -> SlaResult<usize> {
        self.sp.advance_epoch_shared()
    }

    /// Flushes a durable store backend ([`StoreBackend::Persistent`]) to
    /// stable storage, surfacing any deferred write error; a no-op on
    /// volatile backends.
    pub fn sync(&self) -> SlaResult<()> {
        self.sp.sync()
    }

    /// Shared alert pipeline: token issuance, analytic cost, counter
    /// bracketing and outcome assembly; `match_fn` supplies the matching
    /// strategy, which is the only difference between the serial and
    /// batch entry points (keeping their outcomes identical by
    /// construction).
    fn issue_alert_with<R: Rng>(
        &self,
        alert_cells: &[usize],
        rng: &mut R,
        match_fn: impl FnOnce(
            &ServiceProvider,
            &HveScheme<'_, SimulatedGroup>,
            &[sla_hve::Token],
        ) -> SlaResult<Vec<u64>>,
    ) -> SlaResult<AlertOutcome> {
        let scheme = self.scheme();
        let tokens = self.ta.issue_tokens(&scheme, alert_cells, rng)?;
        self.outcome_from_tokens(&scheme, tokens, match_fn)
    }

    /// Second half of the alert pipeline, shared by the full-regeneration
    /// and tracked (incremental) paths: analytic cost, counter bracketing
    /// and outcome assembly over tokens already in hand.
    fn outcome_from_tokens(
        &self,
        scheme: &HveScheme<'_, SimulatedGroup>,
        tokens: Vec<sla_hve::Token>,
        match_fn: impl FnOnce(
            &ServiceProvider,
            &HveScheme<'_, SimulatedGroup>,
            &[sla_hve::Token],
        ) -> SlaResult<Vec<u64>>,
    ) -> SlaResult<AlertOutcome> {
        let non_star_bits: u64 = tokens.iter().map(|t| t.non_star_count() as u64).sum();
        // The analytic model `Σ_tokens (1 + 2·|J|) · n` evaluated on the
        // tokens already in hand, so the alert does not pay minimization
        // a second time.
        let analytic = (tokens.len() as u64 + 2 * non_star_bits) * self.sp.n_subscriptions() as u64;

        let before = self.group.counters().snapshot();
        let mut notified = match_fn(&self.sp, scheme, &tokens)?;
        let delta = self.group.counters().snapshot() - before;
        notified.sort_unstable();

        Ok(AlertOutcome {
            notified,
            tokens_issued: tokens.len(),
            non_star_bits,
            pairings_used: delta.pairings,
            analytic_pairings: analytic,
        })
    }

    /// Issues an alert for a set of cells: the TA minimizes and signs
    /// tokens, the SP evaluates them exhaustively (the cost model's
    /// regime), and matched users are notified.
    ///
    /// Takes `&self`: on the concurrent store backend, subscription churn
    /// through [`Self::subscribe_cell_shared`] /
    /// [`Self::unsubscribe_shared`] may proceed while the alert is being
    /// matched. [`AlertOutcome::pairings_used`] is a counter *delta*, so
    /// it is only meaningful when no other alert runs concurrently.
    ///
    /// `Err(SlaError::CellOutOfRange)` on alert cells outside the grid.
    pub fn issue_alert<R: Rng>(
        &self,
        alert_cells: &[usize],
        rng: &mut R,
    ) -> SlaResult<AlertOutcome> {
        self.issue_alert_with(alert_cells, rng, |sp, scheme, tokens| {
            sp.match_alert_exhaustive(scheme, tokens)
        })
    }

    /// Analytic pairing cost of an alert against the current store,
    /// without performing any cryptography.
    pub fn analytic_cost(&self, alert_cells: &[usize]) -> SlaResult<u64> {
        self.ta
            .analytic_pairing_cost(alert_cells, self.sp.n_subscriptions() as u64)
    }

    /// Batch variant of [`Self::issue_alert`]: the SP evaluates the token
    /// set over chunks of every store shard in parallel via
    /// [`ServiceProvider::process_alert_batch`].
    ///
    /// `chunk_size` of `None` picks a per-core default;
    /// `Err(SlaError::ZeroChunkSize)` for an explicit `Some(0)`. The
    /// outcome is **identical** to [`Self::issue_alert`] for the same
    /// tokens — same `notified`, `tokens_issued`, `pairings_used` — which
    /// the `batch_matching` integration tests assert.
    pub fn issue_alert_batch<R: Rng>(
        &self,
        alert_cells: &[usize],
        chunk_size: Option<usize>,
        rng: &mut R,
    ) -> SlaResult<AlertOutcome> {
        self.issue_alert_with(alert_cells, rng, |sp, scheme, tokens| {
            let chunk = chunk_size.unwrap_or_else(|| sp.default_batch_chunk_size());
            sp.process_alert_batch(scheme, tokens, chunk)
        })
    }

    /// Incremental variant of [`Self::issue_alert`] for **dynamic alert
    /// zones**: the TA serves the zone's minimized pattern set from the
    /// tracker's token cache, freshly generating only the patterns that
    /// entered since the tracker's previous epoch (one
    /// `gen_token_prepared_batch` call) and evicting the ones that
    /// exited.
    ///
    /// The returned [`TrackedAlertOutcome::alert`] is **equal** to what
    /// [`Self::issue_alert`] over the same cells and store contents
    /// produces — same notified set, token count, `pairings_used` and
    /// analytic cost — because matching depends only on token *patterns*,
    /// never on token randomness; the `scenarios` proptest suite pins
    /// this across random trajectories and every store backend. What the
    /// incremental path saves is GenToken work, reported in
    /// [`TrackedAlertOutcome::regen`] and accumulated into
    /// [`crate::ServiceStats`] (`tokens_regenerated`, `cells_entered`,
    /// `cells_exited`) through the SP's atomics.
    ///
    /// Keep one [`ZoneTracker`] per live zone and pass it back every
    /// epoch; a fresh tracker makes the first call a full regeneration.
    ///
    /// `Err(SlaError::CellOutOfRange)` on alert cells outside the grid
    /// (the tracker is left unchanged on error).
    pub fn issue_alert_tracked<R: Rng>(
        &self,
        tracker: &mut ZoneTracker,
        alert_cells: &[usize],
        rng: &mut R,
    ) -> SlaResult<TrackedAlertOutcome> {
        let scheme = self.scheme();
        let (tokens, regen) =
            self.ta
                .issue_tokens_cached(&scheme, tracker.cache_mut(), alert_cells, rng)?;
        let (cells_entered, cells_exited) = tracker.note_cells(alert_cells);
        self.sp
            .note_regen(regen.generated as u64, cells_entered, cells_exited);
        let alert = self.outcome_from_tokens(&scheme, tokens, |sp, scheme, tokens| {
            sp.match_alert_exhaustive(scheme, tokens)
        })?;
        Ok(TrackedAlertOutcome {
            alert,
            regen: TokenRegenStats {
                tokens_generated: regen.generated as u64,
                tokens_reused: regen.reused as u64,
                tokens_evicted: regen.evicted as u64,
                cells_entered,
                cells_exited,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_grid::BoundingBox;

    fn small_system(encoder: EncoderKind) -> (AlertSystem, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xa1e47);
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 3);
        let probs = ProbabilityMap::new(vec![0.3, 0.1, 0.25, 0.05, 0.2, 0.1]);
        let system = SystemBuilder::new(grid)
            .encoder(encoder)
            .group_bits(40)
            .build(&probs, &mut rng)
            .expect("valid configuration");
        (system, rng)
    }

    #[test]
    fn end_to_end_notifications_all_encoders() {
        for encoder in [
            EncoderKind::Huffman,
            EncoderKind::Balanced,
            EncoderKind::BasicFixed,
            EncoderKind::GraySgo,
            EncoderKind::BaryHuffman(3),
        ] {
            let (mut system, mut rng) = small_system(encoder);
            // users 0..6, one per cell
            for cell in 0..6 {
                system
                    .subscribe_cell(100 + cell as u64, cell, &mut rng)
                    .unwrap();
            }
            let outcome = system.issue_alert(&[1, 4], &mut rng).unwrap();
            assert_eq!(outcome.notified, vec![101, 104], "{:?}", encoder);
            assert_eq!(
                outcome.pairings_used, outcome.analytic_pairings,
                "{encoder:?}: live counter must equal analytic model"
            );
        }
    }

    #[test]
    fn tracked_alert_equals_full_and_feeds_stats() {
        // Two identically-seeded systems: one alerts through a tracker,
        // the other regenerates fully; every epoch's outcome must agree.
        let (mut sys_delta, mut rng_d) = small_system(EncoderKind::Huffman);
        let (mut sys_full, mut rng_f) = small_system(EncoderKind::Huffman);
        for cell in 0..6 {
            sys_delta
                .subscribe_cell(100 + cell as u64, cell, &mut rng_d)
                .unwrap();
            sys_full
                .subscribe_cell(100 + cell as u64, cell, &mut rng_f)
                .unwrap();
        }
        let mut tracker = ZoneTracker::new();
        let epochs: [&[usize]; 4] = [&[0, 1], &[1, 2], &[2], &[2, 3, 4]];
        for cells in epochs {
            let tracked = sys_delta
                .issue_alert_tracked(&mut tracker, cells, &mut rng_d)
                .unwrap();
            let full = sys_full.issue_alert(cells, &mut rng_f).unwrap();
            assert_eq!(tracked.alert, full, "cells {cells:?}");
            assert_eq!(
                tracked.regen.tokens_generated + tracked.regen.tokens_reused,
                tracked.alert.tokens_issued as u64
            );
        }
        let stats = sys_delta.service_stats();
        assert!(stats.tokens_regenerated > 0);
        // Epoch deltas: {0,1}→+2, →{1,2} +1, →{2} +0, →{2,3,4} +2 = 5 in;
        // 1+1+0 = 2 out.
        assert_eq!(stats.cells_entered, 5);
        assert_eq!(stats.cells_exited, 2);
        // The untracked system never touched the regen path.
        assert_eq!(sys_full.service_stats().tokens_regenerated, 0);
    }

    #[test]
    fn tracked_alert_out_of_range_leaves_tracker_unchanged() {
        let (system, mut rng) = small_system(EncoderKind::Huffman);
        let mut tracker = ZoneTracker::new();
        system
            .issue_alert_tracked(&mut tracker, &[0, 1], &mut rng)
            .unwrap();
        let cached = tracker.cached_tokens();
        assert!(matches!(
            system.issue_alert_tracked(&mut tracker, &[99], &mut rng),
            Err(SlaError::CellOutOfRange { .. })
        ));
        assert_eq!(tracker.cached_tokens(), cached);
        assert_eq!(tracker.prev_cells(), &[0, 1]);
    }

    #[test]
    fn alert_on_empty_store_costs_nothing() {
        let (system, mut rng) = small_system(EncoderKind::Huffman);
        let outcome = system.issue_alert(&[0], &mut rng).unwrap();
        assert!(outcome.notified.is_empty());
        assert_eq!(outcome.pairings_used, 0);
        assert_eq!(outcome.analytic_pairings, 0);
        assert!(outcome.tokens_issued > 0);
    }

    #[test]
    fn multiple_users_same_cell() {
        let (mut system, mut rng) = small_system(EncoderKind::Huffman);
        for id in [1u64, 2, 3] {
            system.subscribe_cell(id, 2, &mut rng).unwrap();
        }
        system.subscribe_cell(4, 0, &mut rng).unwrap();
        let outcome = system.issue_alert(&[2], &mut rng).unwrap();
        assert_eq!(outcome.notified, vec![1, 2, 3]);
    }

    #[test]
    fn subscribe_by_point() {
        let (mut system, mut rng) = small_system(EncoderKind::Huffman);
        let inside = system.grid().cell_center(sla_grid::CellId(5));
        assert_eq!(
            system.subscribe_point(42, &inside, &mut rng),
            Ok(UpsertOutcome::Inserted)
        );
        assert!(matches!(
            system.subscribe_point(43, &Point::new(50.0, 50.0), &mut rng),
            Err(SlaError::PointOutsideGrid { .. })
        ));
        assert_eq!(system.n_subscriptions(), 1);
        let outcome = system.issue_alert(&[5], &mut rng).unwrap();
        assert_eq!(outcome.notified, vec![42]);
    }

    #[test]
    fn full_zone_alert_notifies_everyone() {
        let (mut system, mut rng) = small_system(EncoderKind::Huffman);
        for cell in 0..6 {
            system.subscribe_cell(cell as u64, cell, &mut rng).unwrap();
        }
        let outcome = system.issue_alert(&[0, 1, 2, 3, 4, 5], &mut rng).unwrap();
        assert_eq!(outcome.notified, vec![0, 1, 2, 3, 4, 5]);
        // whole grid minimizes to very few tokens (root subtree(s))
        assert!(outcome.tokens_issued <= 2, "{}", outcome.tokens_issued);
    }

    #[test]
    fn doc_example_runs() {
        // mirror of the lib.rs doctest, kept as a unit test for coverage
        let mut rng = StdRng::seed_from_u64(1);
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 2);
        let probs = ProbabilityMap::new(vec![0.4, 0.1, 0.3, 0.2]);
        let mut system = AlertSystem::builder(grid)
            .group_bits(48)
            .build(&probs, &mut rng)
            .unwrap();
        system.subscribe_cell(7, 0, &mut rng).unwrap();
        system.subscribe_cell(9, 3, &mut rng).unwrap();
        let outcome = system.issue_alert(&[0, 1], &mut rng).unwrap();
        assert_eq!(outcome.notified, vec![7]);
        assert_eq!(outcome.pairings_used, outcome.analytic_pairings);
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        let mut rng = StdRng::seed_from_u64(2);
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 2);
        let probs3 = ProbabilityMap::new(vec![0.5, 0.3, 0.2]);
        assert_eq!(
            SystemBuilder::new(grid.clone())
                .build(&probs3, &mut rng)
                .unwrap_err(),
            SlaError::ProbabilityMapMismatch {
                map_cells: 3,
                grid_cells: 4
            }
        );
        let probs4 = ProbabilityMap::new(vec![0.4, 0.1, 0.3, 0.2]);
        assert_eq!(
            SystemBuilder::new(grid.clone())
                .group_bits(8)
                .build(&probs4, &mut rng)
                .unwrap_err(),
            SlaError::InvalidGroupBits { bits: 8 }
        );
        assert_eq!(
            SystemBuilder::new(grid.clone())
                .store(StoreBackend::Sharded { shards: 0 })
                .build(&probs4, &mut rng)
                .unwrap_err(),
            SlaError::ZeroShardCount
        );
        assert_eq!(
            SystemBuilder::new(grid)
                .store(StoreBackend::ConcurrentSharded { shards: 0 })
                .build(&probs4, &mut rng)
                .unwrap_err(),
            SlaError::ZeroShardCount
        );
    }

    #[test]
    fn shared_mutation_requires_concurrent_backend() {
        let mut rng = StdRng::seed_from_u64(0x5afe);
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 2);
        let probs = ProbabilityMap::new(vec![0.4, 0.1, 0.3, 0.2]);

        // Exclusive backends reject &self mutation with a typed error.
        let exclusive = SystemBuilder::new(grid.clone())
            .group_bits(40)
            .build(&probs, &mut rng)
            .unwrap();
        assert!(!exclusive.supports_shared_mutation());
        assert_eq!(
            exclusive.subscribe_cell_shared(1, 0, &mut rng).unwrap_err(),
            SlaError::StoreNotConcurrent
        );
        assert_eq!(
            exclusive.unsubscribe_shared(1).unwrap_err(),
            SlaError::StoreNotConcurrent
        );

        // The concurrent backend accepts it and alerts observe the churn.
        let concurrent = SystemBuilder::new(grid)
            .group_bits(40)
            .store(StoreBackend::ConcurrentSharded { shards: 3 })
            .build(&probs, &mut rng)
            .unwrap();
        assert_eq!(
            concurrent.subscribe_cell_shared(1, 0, &mut rng),
            Ok(UpsertOutcome::Inserted)
        );
        assert_eq!(
            concurrent.subscribe_cell_shared(1, 2, &mut rng),
            Ok(UpsertOutcome::Replaced)
        );
        assert_eq!(concurrent.subscription_epochs(), vec![(1, 0)]);
        let outcome = concurrent.issue_alert(&[2], &mut rng).unwrap();
        assert_eq!(outcome.notified, vec![1]);
        concurrent.unsubscribe_shared(1).unwrap();
        assert_eq!(
            concurrent.unsubscribe_shared(1).unwrap_err(),
            SlaError::UnknownUser { user_id: 1 }
        );
        assert_eq!(concurrent.n_subscriptions(), 0);
        assert_eq!(concurrent.store_stats().backend, "concurrent-sharded");
        assert!(concurrent.supports_shared_mutation());
        // The one-call serving snapshot agrees with the piecewise view
        // and reports no recovered epoch on a volatile backend.
        let snapshot = concurrent.service_stats();
        assert_eq!(snapshot.store, concurrent.store_stats());
        assert_eq!(snapshot.recovered_epoch, None);
        assert_eq!(snapshot.store.inserted, 1);
        assert_eq!(snapshot.store.replaced, 1);
        assert_eq!(snapshot.store.unsubscribed, 1);
    }

    #[test]
    fn bulk_subscribe_matches_serial_exactly() {
        // Same seed through the bulk and the serial path: identical
        // stored ciphertexts (hence identical alert outcomes), identical
        // counter deltas, outcomes in request order.
        let requests: Vec<(u64, usize)> = vec![(100, 1), (101, 4), (102, 1), (103, 0), (104, 5)];

        let (mut serial_sys, _) = small_system(EncoderKind::Huffman);
        let mut r1 = StdRng::seed_from_u64(0xb01);
        let before = serial_sys.counters().snapshot();
        let serial_outcomes: Vec<UpsertOutcome> = requests
            .iter()
            .map(|&(id, cell)| serial_sys.subscribe_cell(id, cell, &mut r1).unwrap())
            .collect();
        let serial_delta = serial_sys.counters().snapshot() - before;

        let (mut bulk_sys, _) = small_system(EncoderKind::Huffman);
        let mut r2 = StdRng::seed_from_u64(0xb01);
        let before = bulk_sys.counters().snapshot();
        let bulk_outcomes = bulk_sys.subscribe_cells_bulk(&requests, &mut r2).unwrap();
        let bulk_delta = bulk_sys.counters().snapshot() - before;

        assert_eq!(bulk_outcomes, serial_outcomes);
        assert_eq!(bulk_delta, serial_delta, "op counts must be identical");
        assert_eq!(
            bulk_sys.subscription_epochs(),
            serial_sys.subscription_epochs()
        );
        // Both systems were built from the same seed, so the alert
        // outcomes (notified sets AND pairing counts) must agree.
        let mut ra = StdRng::seed_from_u64(7);
        let mut rb = StdRng::seed_from_u64(7);
        let a = serial_sys.issue_alert(&[1, 4], &mut ra).unwrap();
        let b = bulk_sys.issue_alert(&[1, 4], &mut rb).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.notified, vec![100, 101, 102]);

        // Validation is all-or-nothing: a bad cell leaves the store
        // untouched.
        let before_len = bulk_sys.n_subscriptions();
        assert!(matches!(
            bulk_sys.subscribe_cells_bulk(&[(200, 0), (201, 99)], &mut r2),
            Err(SlaError::CellOutOfRange { cell: 99, .. })
        ));
        assert_eq!(bulk_sys.n_subscriptions(), before_len);
        // Empty bulk is a no-op.
        assert_eq!(bulk_sys.subscribe_cells_bulk(&[], &mut r2), Ok(vec![]));
    }

    #[test]
    fn upsert_moves_a_user_between_cells() {
        for backend in [
            StoreBackend::Contiguous,
            StoreBackend::Sharded { shards: 3 },
            StoreBackend::ConcurrentSharded { shards: 3 },
        ] {
            let mut rng = StdRng::seed_from_u64(0xa1e47);
            let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 3);
            let probs = ProbabilityMap::new(vec![0.3, 0.1, 0.25, 0.05, 0.2, 0.1]);
            let mut system = SystemBuilder::new(grid)
                .group_bits(40)
                .store(backend.clone())
                .build(&probs, &mut rng)
                .unwrap();
            assert_eq!(
                system.subscribe_cell(9, 1, &mut rng),
                Ok(UpsertOutcome::Inserted)
            );
            assert_eq!(
                system.subscribe_cell(9, 4, &mut rng),
                Ok(UpsertOutcome::Replaced)
            );
            assert_eq!(system.n_subscriptions(), 1, "{backend:?}");
            let old = system.issue_alert(&[1], &mut rng).unwrap();
            assert!(old.notified.is_empty(), "{backend:?}: stale match");
            let new = system.issue_alert(&[4], &mut rng).unwrap();
            assert_eq!(new.notified, vec![9], "{backend:?}");
        }
    }
}
