//! Pluggable subscription storage for the Service Provider.
//!
//! The paper's system model (§2.2) is a *long-lived* service: users keep
//! re-submitting encrypted location updates as they move, so the SP's
//! store needs upsert/remove semantics and a layout that batch matching
//! can parallelize over. Two seams exist:
//!
//! * [`SubscriptionStore`] — exclusive (`&mut self`) mutation. The
//!   contiguous backend keeps the original `Vec` simplicity, the
//!   hash-sharded backend buys O(1) upsert/remove and per-shard
//!   parallelism. Matching iterates [`SubscriptionStore::chunked`] units
//!   in a deterministic order for both backends, so serial and batch
//!   outcomes are identical by construction.
//! * [`ConcurrentSubscriptionStore`] — interior-mutability (`&self`)
//!   upsert/remove/evict behind per-shard `RwLock`s, so subscription
//!   churn can proceed *while* a batch match is running.
//!   [`ConcurrentShardedStore`] is the built-in backend; matching reads
//!   one shard at a time through
//!   [`ConcurrentSubscriptionStore::read_shard`], which holds that
//!   shard's read lock for the duration of the callback (a per-shard
//!   snapshot), while writers to other shards proceed untouched.
//!   [`crate::PersistentStore`] implements the same seam with an
//!   `sla-persist` write-ahead log underneath, so the subscription base
//!   survives restarts (see [`StoreBackend::Persistent`]).

use crate::durable::PersistentStore;
use crate::error::{SlaError, SlaResult};
use sla_hve::Ciphertext;
use sla_pairing::GtElem;
use sla_persist::FlushPolicy;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// One stored location update, as the SP keeps it.
#[derive(Debug, Clone)]
pub struct StoredSubscription {
    /// Routing identifier (who to push the notification to).
    pub user_id: u64,
    /// The encrypted location update.
    pub ciphertext: Ciphertext,
    /// The expected payload `gt^{user_id + 1}`, precomputed at upsert
    /// time so alert matching can compare candidates **inside the
    /// Montgomery residue domain** (zero canonical conversions per pair;
    /// see `HveScheme::match_token`). Derived from the public generator
    /// and the routing id the user already disclosed — no extra leakage.
    pub expected: GtElem,
    /// Epoch of the most recent upsert (drives TTL eviction).
    pub epoch: u64,
}

/// What an upsert did to the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsertOutcome {
    /// The user had no stored update; one was added.
    Inserted,
    /// The user's previous ciphertext was replaced — the old location no
    /// longer matches any alert.
    Replaced,
}

/// Which storage backend [`crate::SystemBuilder`] assembles.
///
/// (Not `Copy` since the persistent variant carries its directory; all
/// variants stay cheap to `Clone`.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreBackend {
    /// A single contiguous `Vec` in arrival order: minimal overhead,
    /// O(n) upsert/remove. Right for small or churn-free populations.
    Contiguous,
    /// `shards` hash-buckets keyed by `user_id`: O(1) upsert/remove and
    /// per-shard parallel batch matching. Right for large populations
    /// under churn.
    Sharded {
        /// Number of hash shards (must be positive).
        shards: usize,
    },
    /// `shards` hash-buckets, each behind its own `RwLock`: upserts and
    /// removals take only the target shard's write lock, so churn
    /// proceeds *while* a batch match holds read locks on other shards.
    /// Right for long-lived services where location updates and alert
    /// matching must overlap.
    ConcurrentSharded {
        /// Number of lock shards (must be positive).
        shards: usize,
    },
    /// The durable backend: an in-memory [`ConcurrentShardedStore`] (so
    /// matching speed is unchanged) layered over an `sla-persist`
    /// sharded log — one durability lane (WAL generations + paged
    /// snapshot) per memory shard. Mutations append one WAL frame to
    /// the owning lane under that shard's gate only; reopening the same
    /// directory recovers every lane in parallel (snapshot + WAL
    /// replay, torn final record tolerated per lane). A pre-sharding
    /// directory (single root WAL + snapshot) is migrated in place on
    /// first open. Right for long-lived services that must survive
    /// restarts without every user re-running Subscribe.
    Persistent {
        /// Directory holding `store.meta` and the `shard.NNN/` lane
        /// directories (created, or migrated from the single-log
        /// layout, if absent).
        dir: PathBuf,
        /// When WAL appends are fsync'd (per-op, group commit, or
        /// manual — see [`FlushPolicy`]).
        flush: FlushPolicy,
    },
}

/// How the Service Provider holds its store: exclusively (`&mut self`
/// mutation through [`SubscriptionStore`]) or shared (interior-mutability
/// mutation through [`ConcurrentSubscriptionStore`]).
#[derive(Debug)]
pub(crate) enum StoreHandle {
    /// A backend mutated through `&mut self` only.
    Exclusive(Box<dyn SubscriptionStore>),
    /// A lock-sharded backend mutable through `&self`. (A `Box`, not an
    /// `Arc`: matchers and writer threads borrow `&dyn` through scoped
    /// threads, so no shared ownership is needed.)
    Concurrent(Box<dyn ConcurrentSubscriptionStore>),
}

impl StoreHandle {
    pub(crate) fn backend_name(&self) -> &'static str {
        match self {
            StoreHandle::Exclusive(s) => s.backend_name(),
            StoreHandle::Concurrent(s) => s.backend_name(),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        match self {
            StoreHandle::Exclusive(s) => s.shard_count(),
            StoreHandle::Concurrent(s) => s.shard_count(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            StoreHandle::Exclusive(s) => s.len(),
            StoreHandle::Concurrent(s) => s.len(),
        }
    }

    /// Upsert through whichever seam the backend implements (`&mut self`
    /// here covers both: the concurrent seam only *needs* `&self`).
    pub(crate) fn upsert(&mut self, record: StoredSubscription) -> UpsertOutcome {
        match self {
            StoreHandle::Exclusive(s) => s.upsert(record),
            StoreHandle::Concurrent(s) => s.upsert(record),
        }
    }

    pub(crate) fn remove(&mut self, user_id: u64) -> bool {
        match self {
            StoreHandle::Exclusive(s) => s.remove(user_id),
            StoreHandle::Concurrent(s) => s.remove(user_id),
        }
    }

    pub(crate) fn evict_before(&mut self, min_epoch: u64) -> usize {
        match self {
            StoreHandle::Exclusive(s) => s.evict_before(min_epoch),
            StoreHandle::Concurrent(s) => s.evict_before(min_epoch),
        }
    }

    /// Durability hook: records an epoch advance (volatile backends
    /// ignore it).
    pub(crate) fn note_epoch(&self, epoch: u64) {
        if let StoreHandle::Concurrent(s) = self {
            s.note_epoch(epoch);
        }
    }

    /// The epoch a durable backend recovered, if any.
    pub(crate) fn recovered_epoch(&self) -> Option<u64> {
        match self {
            StoreHandle::Exclusive(_) => None,
            StoreHandle::Concurrent(s) => s.recovered_epoch(),
        }
    }

    /// Flushes a durable backend to stable storage (no-op otherwise).
    pub(crate) fn sync(&self) -> SlaResult<()> {
        match self {
            StoreHandle::Exclusive(_) => Ok(()),
            StoreHandle::Concurrent(s) => s.sync(),
        }
    }

    /// Per-lane durability stats (empty for volatile backends).
    pub(crate) fn durability_lanes(&self) -> Vec<DurabilityLaneStats> {
        match self {
            StoreHandle::Exclusive(_) => Vec::new(),
            StoreHandle::Concurrent(s) => s.durability_lanes(),
        }
    }
}

impl StoreBackend {
    /// Builds the backend: `Err(SlaError::ZeroShardCount)` for a
    /// zero-shard layout, `Err(SlaError::Storage)` /
    /// `Err(SlaError::Corrupt)` when the persistent backend cannot open
    /// or recover its directory.
    pub(crate) fn build(self) -> SlaResult<StoreHandle> {
        match self {
            StoreBackend::Contiguous => Ok(StoreHandle::Exclusive(Box::new(VecStore::new()))),
            StoreBackend::Sharded { shards: 0 } | StoreBackend::ConcurrentSharded { shards: 0 } => {
                Err(SlaError::ZeroShardCount)
            }
            StoreBackend::Sharded { shards } => {
                Ok(StoreHandle::Exclusive(Box::new(ShardedStore::new(shards))))
            }
            StoreBackend::ConcurrentSharded { shards } => Ok(StoreHandle::Concurrent(Box::new(
                ConcurrentShardedStore::new(shards),
            ))),
            StoreBackend::Persistent { dir, flush } => Ok(StoreHandle::Concurrent(Box::new(
                PersistentStore::open(&dir, flush)?,
            ))),
        }
    }
}

/// Storage seam between the Service Provider and its backing layout.
///
/// Implementations must keep a **single record per `user_id`** (upsert
/// replaces) and expose the records as stable shard slices; everything
/// the matching paths consume derives from [`SubscriptionStore::shards`],
/// which is what keeps serial and batch outcomes identical across
/// backends.
pub trait SubscriptionStore: fmt::Debug + Send + Sync {
    /// Short backend name for stats/diagnostics.
    fn backend_name(&self) -> &'static str;

    /// Number of shards the layout exposes (1 for contiguous).
    fn shard_count(&self) -> usize;

    /// Number of stored subscriptions.
    fn len(&self) -> usize;

    /// `true` iff no subscriptions are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts or replaces the record for `record.user_id`.
    fn upsert(&mut self, record: StoredSubscription) -> UpsertOutcome;

    /// Removes the record for `user_id`; `false` if absent.
    fn remove(&mut self, user_id: u64) -> bool;

    /// Evicts every record with `epoch < min_epoch`, returning how many
    /// were dropped.
    fn evict_before(&mut self, min_epoch: u64) -> usize;

    /// The stored records as one slice per shard, in a deterministic
    /// order (shards in index order; records in insertion order, with
    /// removals allowed to backfill).
    fn shards(&self) -> Vec<&[StoredSubscription]>;

    /// The matching work units: every shard split into `chunk_size`-sized
    /// chunks, in shard order. Both the serial and the parallel matching
    /// paths walk exactly this list, which makes their outcomes identical
    /// by construction.
    fn chunked(&self, chunk_size: usize) -> Vec<&[StoredSubscription]> {
        self.shards()
            .into_iter()
            .flat_map(|shard| shard.chunks(chunk_size.max(1)))
            .collect()
    }
}

/// The contiguous backend: one `Vec` in arrival order.
#[derive(Debug, Default)]
pub struct VecStore {
    items: Vec<StoredSubscription>,
}

impl VecStore {
    /// An empty contiguous store.
    pub fn new() -> Self {
        VecStore::default()
    }
}

impl SubscriptionStore for VecStore {
    fn backend_name(&self) -> &'static str {
        "contiguous"
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn upsert(&mut self, record: StoredSubscription) -> UpsertOutcome {
        match self.items.iter_mut().find(|r| r.user_id == record.user_id) {
            Some(slot) => {
                *slot = record;
                UpsertOutcome::Replaced
            }
            None => {
                self.items.push(record);
                UpsertOutcome::Inserted
            }
        }
    }

    fn remove(&mut self, user_id: u64) -> bool {
        let before = self.items.len();
        self.items.retain(|r| r.user_id != user_id);
        self.items.len() < before
    }

    fn evict_before(&mut self, min_epoch: u64) -> usize {
        let before = self.items.len();
        self.items.retain(|r| r.epoch >= min_epoch);
        before - self.items.len()
    }

    fn shards(&self) -> Vec<&[StoredSubscription]> {
        vec![&self.items]
    }
}

/// The hash-sharded backend: `user_id` hashes to a shard, a per-user
/// index gives O(1) upsert/remove (removal backfills via `swap_remove`).
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Vec<StoredSubscription>>,
    /// `user_id` → position within its (hash-determined) shard.
    index: HashMap<u64, usize>,
}

impl ShardedStore {
    /// An empty store with `shards` hash buckets.
    ///
    /// # Panics
    /// Panics if `shards == 0` (the builder rejects that earlier with
    /// `SlaError::ZeroShardCount`).
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        ShardedStore {
            shards: (0..shards).map(|_| Vec::new()).collect(),
            index: HashMap::new(),
        }
    }

    /// Deterministic shard of a user id (see [`shard_index`]).
    fn shard_of(&self, user_id: u64) -> usize {
        shard_index(user_id, self.shards.len())
    }
}

/// Deterministic shard of a user id: Fibonacci multiplicative hash —
/// stable across runs and platforms, unlike `RandomState`. Shared by
/// [`ShardedStore`], [`ConcurrentShardedStore`], and the persistent
/// backend's durability-lane router so record placement is bit-identical
/// across the sharded backends and their on-disk lanes (the
/// cross-backend equivalence tests and lane recovery rely on this).
pub(crate) fn shard_index(user_id: u64, n_shards: usize) -> usize {
    (user_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % n_shards
}

impl SubscriptionStore for ShardedStore {
    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn upsert(&mut self, record: StoredSubscription) -> UpsertOutcome {
        let shard = self.shard_of(record.user_id);
        match self.index.get(&record.user_id) {
            Some(&pos) => {
                self.shards[shard][pos] = record;
                UpsertOutcome::Replaced
            }
            None => {
                self.index.insert(record.user_id, self.shards[shard].len());
                self.shards[shard].push(record);
                UpsertOutcome::Inserted
            }
        }
    }

    fn remove(&mut self, user_id: u64) -> bool {
        let Some(pos) = self.index.remove(&user_id) else {
            return false;
        };
        let shard = self.shard_of(user_id);
        self.shards[shard].swap_remove(pos);
        if let Some(moved) = self.shards[shard].get(pos) {
            self.index.insert(moved.user_id, pos);
        }
        true
    }

    fn evict_before(&mut self, min_epoch: u64) -> usize {
        let mut evicted = 0;
        for shard in &mut self.shards {
            let before = shard.len();
            shard.retain(|r| {
                let keep = r.epoch >= min_epoch;
                if !keep {
                    self.index.remove(&r.user_id);
                }
                keep
            });
            if shard.len() < before {
                evicted += before - shard.len();
                // retain preserves order but shifts positions; re-index
                // the survivors of this shard (eviction is rare, O(shard)
                // is fine).
                for (pos, r) in shard.iter().enumerate() {
                    self.index.insert(r.user_id, pos);
                }
            }
        }
        evicted
    }

    fn shards(&self) -> Vec<&[StoredSubscription]> {
        self.shards.iter().map(Vec::as_slice).collect()
    }
}

/// Storage seam for backends that support **concurrent** mutation: every
/// mutating method takes `&self`, so writer threads can upsert/remove
/// while a matcher iterates [`ConcurrentSubscriptionStore::read_shard`].
///
/// ## Locking contract
///
/// Implementations must key every record's location by `user_id` alone
/// (one record per user, always in the same shard), take at most **one**
/// internal lock per call, and never hold a lock across calls — which
/// makes the whole trait deadlock-free by construction: there is no
/// second lock to wait for while holding a first.
///
/// ## Consistency model
///
/// [`ConcurrentSubscriptionStore::read_shard`] holds the shard's read
/// lock for the whole callback, so each shard is observed as an atomic
/// snapshot and no half-written record is ever visible. A multi-shard
/// read (a batch match) observes different shards at different instants;
/// because a user's operations only ever touch that user's home shard,
/// the combined result still corresponds to a serializable interleaving
/// of the concurrent operations — per user, exactly the record state at
/// that shard's snapshot instant.
pub trait ConcurrentSubscriptionStore: fmt::Debug + Send + Sync {
    /// Short backend name for stats/diagnostics.
    fn backend_name(&self) -> &'static str;

    /// Number of lock shards.
    fn shard_count(&self) -> usize;

    /// Number of stored subscriptions. Exact when quiescent; while
    /// writers are active the value may transiently lag individual shard
    /// contents (it is maintained outside the shard locks).
    fn len(&self) -> usize;

    /// `true` iff no subscriptions are stored (same caveat as
    /// [`ConcurrentSubscriptionStore::len`]).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts or replaces the record for `record.user_id`, taking only
    /// the target shard's write lock.
    fn upsert(&self, record: StoredSubscription) -> UpsertOutcome;

    /// Removes the record for `user_id` (target shard's write lock);
    /// `false` if absent.
    fn remove(&self, user_id: u64) -> bool;

    /// Evicts every record with `epoch < min_epoch`, locking one shard at
    /// a time; returns how many were dropped.
    fn evict_before(&self, min_epoch: u64) -> usize;

    /// Runs `f` over shard `shard`'s records under that shard's read
    /// lock — a snapshot-consistent view of the shard. Record order is
    /// deterministic (insertion order with `swap_remove` backfill), so
    /// serial and parallel matchers that walk shards in index order see
    /// identical sequences on a quiescent store.
    fn read_shard(&self, shard: usize, f: &mut dyn FnMut(&[StoredSubscription]));

    // -- Durability hooks (no-ops for volatile backends) ---------------

    /// Records that the service epoch advanced to `epoch`, so a durable
    /// backend can restore it on reopen. Volatile backends ignore it.
    fn note_epoch(&self, _epoch: u64) {}

    /// The service epoch this backend recovered from stable storage, or
    /// `None` for volatile backends (and fresh directories).
    fn recovered_epoch(&self) -> Option<u64> {
        None
    }

    /// Flushes outstanding mutations to stable storage and surfaces any
    /// deferred write error. Volatile backends trivially succeed.
    fn sync(&self) -> SlaResult<()> {
        Ok(())
    }

    /// Per-lane durability stats (WAL generation and depth for every
    /// durability lane), wait-free. Empty for volatile backends.
    fn durability_lanes(&self) -> Vec<DurabilityLaneStats> {
        Vec::new()
    }
}

/// One durability lane's stats, as exposed through
/// [`crate::ServiceStats`] and the stats RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityLaneStats {
    /// The lane's shard index (aligned with the memory shard map).
    pub shard: usize,
    /// The lane's current WAL generation (bumped on each compaction
    /// rotation).
    pub wal_generation: u64,
    /// Ops appended to the lane since its last snapshot.
    pub depth: usize,
}

/// One lock shard of [`ConcurrentShardedStore`]: the records plus the
/// per-user position index, guarded together so they can never disagree.
#[derive(Debug, Default)]
struct LockShard {
    items: Vec<StoredSubscription>,
    /// `user_id` → position within `items`.
    index: HashMap<u64, usize>,
}

/// The concurrent backend: `shards` hash-buckets, each behind its own
/// `RwLock`, plus an atomic length counter. Upsert/remove/evict take one
/// shard write lock; matching takes one shard read lock at a time (see
/// the [`ConcurrentSubscriptionStore`] consistency model).
#[derive(Debug)]
pub struct ConcurrentShardedStore {
    shards: Vec<RwLock<LockShard>>,
    /// Live record count, maintained outside the shard locks (exact when
    /// quiescent).
    len: AtomicUsize,
}

impl ConcurrentShardedStore {
    /// An empty store with `shards` lock shards.
    ///
    /// # Panics
    /// Panics if `shards == 0` (the builder rejects that earlier with
    /// `SlaError::ZeroShardCount`).
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        ConcurrentShardedStore {
            shards: (0..shards)
                .map(|_| RwLock::new(LockShard::default()))
                .collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Deterministic shard of a user id (see [`shard_index`] — identical
    /// placement to [`ShardedStore`]).
    fn shard_of(&self, user_id: u64) -> usize {
        shard_index(user_id, self.shards.len())
    }

    /// Write-locks a shard, recovering from poisoning: the guarded data
    /// is only ever mutated by the panic-free operations below, so a
    /// poisoned lock (a reader panicked in a callback) still guards a
    /// consistent shard.
    fn write_shard(&self, shard: usize) -> RwLockWriteGuard<'_, LockShard> {
        self.shards[shard]
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Read-locks a shard (poison-recovering, see
    /// [`Self::write_shard`]).
    fn read_shard_guard(&self, shard: usize) -> RwLockReadGuard<'_, LockShard> {
        self.shards[shard]
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Evicts every record with `epoch < min_epoch` from **one** shard
    /// (that shard's write lock only); returns how many were dropped.
    /// The persistent backend sweeps shard-by-shard under its per-shard
    /// gates, so a full-store eviction never holds more than one lane's
    /// serialization at a time.
    pub fn evict_shard_before(&self, shard: usize, min_epoch: u64) -> usize {
        let mut guard = self.write_shard(shard);
        let before = guard.items.len();
        let LockShard { items, index } = &mut *guard;
        items.retain(|r| {
            let keep = r.epoch >= min_epoch;
            if !keep {
                index.remove(&r.user_id);
            }
            keep
        });
        let dropped = before - items.len();
        if dropped > 0 {
            // retain preserves order but shifts positions; re-index the
            // survivors of this shard.
            for (pos, r) in items.iter().enumerate() {
                index.insert(r.user_id, pos);
            }
            self.len.fetch_sub(dropped, Ordering::Relaxed);
        }
        dropped
    }
}

impl ConcurrentSubscriptionStore for ConcurrentShardedStore {
    fn backend_name(&self) -> &'static str {
        "concurrent-sharded"
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn upsert(&self, record: StoredSubscription) -> UpsertOutcome {
        let shard = self.shard_of(record.user_id);
        let mut guard = self.write_shard(shard);
        match guard.index.get(&record.user_id) {
            Some(&pos) => {
                guard.items[pos] = record;
                UpsertOutcome::Replaced
            }
            None => {
                let pos = guard.items.len();
                guard.index.insert(record.user_id, pos);
                guard.items.push(record);
                self.len.fetch_add(1, Ordering::Relaxed);
                UpsertOutcome::Inserted
            }
        }
    }

    fn remove(&self, user_id: u64) -> bool {
        let shard = self.shard_of(user_id);
        let mut guard = self.write_shard(shard);
        let Some(pos) = guard.index.remove(&user_id) else {
            return false;
        };
        guard.items.swap_remove(pos);
        if let Some(moved_id) = guard.items.get(pos).map(|r| r.user_id) {
            guard.index.insert(moved_id, pos);
        }
        self.len.fetch_sub(1, Ordering::Relaxed);
        true
    }

    fn evict_before(&self, min_epoch: u64) -> usize {
        (0..self.shards.len())
            .map(|shard| self.evict_shard_before(shard, min_epoch))
            .sum()
    }

    fn read_shard(&self, shard: usize, f: &mut dyn FnMut(&[StoredSubscription])) {
        let guard = self.read_shard_guard(shard);
        f(&guard.items);
    }
}

/// Point-in-time snapshot of a Service Provider's store and lifecycle
/// counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Backend name (`"contiguous"`, `"sharded"`, `"concurrent-sharded"`
    /// or `"persistent"`).
    pub backend: &'static str,
    /// Number of shards.
    pub shards: usize,
    /// Live subscriptions.
    pub subscriptions: usize,
    /// Current epoch.
    pub epoch: u64,
    /// TTL in epochs, if eviction is enabled.
    pub ttl_epochs: Option<u64>,
    /// Lifetime count of first-time inserts.
    pub inserted: u64,
    /// Lifetime count of upserts that replaced an existing ciphertext.
    pub replaced: u64,
    /// Lifetime count of explicit unsubscribes.
    pub unsubscribed: u64,
    /// Lifetime count of TTL evictions.
    pub evicted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_hve::{AttributeVector, HveScheme};
    use sla_pairing::SimulatedGroup;

    /// One real (tiny) ciphertext, cloned into every test record — the
    /// store treats it as opaque bytes.
    fn fixture_ciphertext() -> Ciphertext {
        let mut rng = StdRng::seed_from_u64(1);
        let grp = SimulatedGroup::generate(24, &mut rng);
        let scheme = HveScheme::new(&grp, 2);
        let (pk, _) = scheme.setup(&mut rng);
        let attr = AttributeVector::from_bits(&[true, false]);
        scheme.encrypt(&pk, &attr, &scheme.encode_message(1), &mut rng)
    }

    fn record(ct: &Ciphertext, user_id: u64, epoch: u64) -> StoredSubscription {
        StoredSubscription {
            user_id,
            ciphertext: ct.clone(),
            expected: GtElem::identity(),
            epoch,
        }
    }

    fn ids_in_order(store: &dyn SubscriptionStore) -> Vec<u64> {
        store
            .shards()
            .into_iter()
            .flatten()
            .map(|r| r.user_id)
            .collect()
    }

    fn backends() -> Vec<Box<dyn SubscriptionStore>> {
        vec![
            Box::new(VecStore::new()),
            Box::new(ShardedStore::new(4)),
            Box::new(ShardedStore::new(1)),
        ]
    }

    #[test]
    fn upsert_replaces_single_record_per_user() {
        let ct = fixture_ciphertext();
        for mut store in backends() {
            assert_eq!(store.upsert(record(&ct, 7, 0)), UpsertOutcome::Inserted);
            assert_eq!(store.upsert(record(&ct, 8, 0)), UpsertOutcome::Inserted);
            assert_eq!(store.upsert(record(&ct, 7, 3)), UpsertOutcome::Replaced);
            assert_eq!(store.len(), 2, "{}", store.backend_name());
            let epochs: Vec<u64> = store
                .shards()
                .into_iter()
                .flatten()
                .filter(|r| r.user_id == 7)
                .map(|r| r.epoch)
                .collect();
            assert_eq!(epochs, vec![3], "{}", store.backend_name());
        }
    }

    #[test]
    fn remove_and_eviction() {
        let ct = fixture_ciphertext();
        for mut store in backends() {
            for id in 0..10 {
                store.upsert(record(&ct, id, id % 3));
            }
            assert!(store.remove(4));
            assert!(!store.remove(4));
            assert_eq!(store.len(), 9);
            // evict epochs 0 (ids 0,3,6,9) — id 4 already gone from epoch-1s
            let evicted = store.evict_before(1);
            assert_eq!(evicted, 4, "{}", store.backend_name());
            assert_eq!(store.len(), 5);
            let mut left = ids_in_order(store.as_ref());
            left.sort_unstable();
            assert_eq!(left, vec![1, 2, 5, 7, 8]);
            // the survivors are still individually addressable
            for id in [1, 2, 5, 7, 8] {
                assert!(store.remove(id), "{}: {id}", store.backend_name());
            }
            assert!(store.is_empty());
        }
    }

    #[test]
    fn chunked_covers_every_record_exactly_once() {
        let ct = fixture_ciphertext();
        for mut store in backends() {
            for id in 0..23 {
                store.upsert(record(&ct, id, 0));
            }
            for chunk_size in [1, 4, 7, 100] {
                let mut seen: Vec<u64> = store
                    .chunked(chunk_size)
                    .into_iter()
                    .flatten()
                    .map(|r| r.user_id)
                    .collect();
                assert_eq!(seen.len(), 23, "{}", store.backend_name());
                assert_eq!(seen, ids_in_order(store.as_ref()), "chunking reorders");
                seen.sort_unstable();
                assert_eq!(seen, (0..23).collect::<Vec<_>>());
            }
        }
    }

    /// All ids in the concurrent store, in deterministic shard-walk
    /// order.
    fn concurrent_ids_in_order(store: &ConcurrentShardedStore) -> Vec<u64> {
        let mut ids = Vec::new();
        for shard in 0..store.shard_count() {
            store.read_shard(shard, &mut |records| {
                ids.extend(records.iter().map(|r| r.user_id));
            });
        }
        ids
    }

    #[test]
    fn concurrent_store_lifecycle_matches_exclusive_semantics() {
        let ct = fixture_ciphertext();
        let store = ConcurrentShardedStore::new(4);
        // upsert replaces, via &self only
        assert_eq!(store.upsert(record(&ct, 7, 0)), UpsertOutcome::Inserted);
        assert_eq!(store.upsert(record(&ct, 8, 0)), UpsertOutcome::Inserted);
        assert_eq!(store.upsert(record(&ct, 7, 3)), UpsertOutcome::Replaced);
        assert_eq!(store.len(), 2);
        // remove backfills and stays addressable
        for id in 0..10 {
            store.upsert(record(&ct, id, id % 3));
        }
        assert!(store.remove(4));
        assert!(!store.remove(4));
        // evict epoch-0 records (ids 0,3,6,9; id 7 was re-upserted at 3)
        let evicted = store.evict_before(1);
        assert_eq!(evicted, 4);
        let mut left = concurrent_ids_in_order(&store);
        left.sort_unstable();
        assert_eq!(left, vec![1, 2, 5, 7, 8]);
        assert_eq!(store.len(), 5);
        for id in [1, 2, 5, 7, 8] {
            assert!(store.remove(id), "{id}");
        }
        assert!(store.is_empty());
    }

    #[test]
    fn concurrent_store_matches_sharded_layout() {
        // Same hash, same shard count -> identical record placement, so
        // shard-walk matching orders agree across the two sharded
        // backends.
        let ct = fixture_ciphertext();
        let concurrent = ConcurrentShardedStore::new(8);
        let mut sharded = ShardedStore::new(8);
        for id in 0..100 {
            concurrent.upsert(record(&ct, id, 0));
            sharded.upsert(record(&ct, id, 0));
        }
        assert_eq!(concurrent_ids_in_order(&concurrent), ids_in_order(&sharded));
    }

    #[test]
    fn concurrent_store_parallel_churn_converges() {
        // 4 writer threads over disjoint user ranges; the final state is
        // each user's last op regardless of interleaving.
        let ct = fixture_ciphertext();
        let store = ConcurrentShardedStore::new(8);
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let store = &store;
                let ct = &ct;
                scope.spawn(move || {
                    for round in 0..20u64 {
                        for id in (w * 25)..(w * 25 + 25) {
                            store.upsert(record(ct, id, round));
                            if id % 3 == 0 {
                                store.remove(id);
                            }
                        }
                    }
                });
            }
        });
        let mut ids = concurrent_ids_in_order(&store);
        ids.sort_unstable();
        let expected: Vec<u64> = (0..100).filter(|id| id % 3 != 0).collect();
        assert_eq!(ids, expected);
        assert_eq!(store.len(), expected.len());
    }

    #[test]
    fn sharded_distribution_is_deterministic_and_total() {
        let mut a = ShardedStore::new(8);
        let mut b = ShardedStore::new(8);
        let ct = fixture_ciphertext();
        for id in 0..100 {
            a.upsert(record(&ct, id, 0));
            b.upsert(record(&ct, id, 0));
        }
        assert_eq!(ids_in_order(&a), ids_in_order(&b));
        assert!(a.shards().iter().filter(|s| !s.is_empty()).count() > 1);
    }
}
