//! Pluggable subscription storage for the Service Provider.
//!
//! The paper's system model (§2.2) is a *long-lived* service: users keep
//! re-submitting encrypted location updates as they move, so the SP's
//! store needs upsert/remove semantics and a layout that batch matching
//! can parallelize over. [`SubscriptionStore`] is the seam: the
//! contiguous backend keeps the original `Vec` simplicity, the
//! hash-sharded backend buys O(1) upsert/remove and per-shard
//! parallelism. Matching iterates [`SubscriptionStore::chunked`] units in
//! a deterministic order for both backends, so serial and batch outcomes
//! are identical by construction.

use sla_hve::Ciphertext;
use sla_pairing::GtElem;
use std::collections::HashMap;
use std::fmt;

/// One stored location update, as the SP keeps it.
#[derive(Debug, Clone)]
pub struct StoredSubscription {
    /// Routing identifier (who to push the notification to).
    pub user_id: u64,
    /// The encrypted location update.
    pub ciphertext: Ciphertext,
    /// The expected payload `gt^{user_id + 1}`, precomputed at upsert
    /// time so alert matching can compare candidates **inside the
    /// Montgomery residue domain** (zero canonical conversions per pair;
    /// see `HveScheme::match_token`). Derived from the public generator
    /// and the routing id the user already disclosed — no extra leakage.
    pub expected: GtElem,
    /// Epoch of the most recent upsert (drives TTL eviction).
    pub epoch: u64,
}

/// What an upsert did to the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsertOutcome {
    /// The user had no stored update; one was added.
    Inserted,
    /// The user's previous ciphertext was replaced — the old location no
    /// longer matches any alert.
    Replaced,
}

/// Which storage backend [`crate::SystemBuilder`] assembles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreBackend {
    /// A single contiguous `Vec` in arrival order: minimal overhead,
    /// O(n) upsert/remove. Right for small or churn-free populations.
    Contiguous,
    /// `shards` hash-buckets keyed by `user_id`: O(1) upsert/remove and
    /// per-shard parallel batch matching. Right for large populations
    /// under churn.
    Sharded {
        /// Number of hash shards (must be positive).
        shards: usize,
    },
}

impl StoreBackend {
    /// Builds the backend. `None` only for `Sharded { shards: 0 }`.
    pub(crate) fn build(self) -> Option<Box<dyn SubscriptionStore>> {
        match self {
            StoreBackend::Contiguous => Some(Box::new(VecStore::new())),
            StoreBackend::Sharded { shards: 0 } => None,
            StoreBackend::Sharded { shards } => Some(Box::new(ShardedStore::new(shards))),
        }
    }
}

/// Storage seam between the Service Provider and its backing layout.
///
/// Implementations must keep a **single record per `user_id`** (upsert
/// replaces) and expose the records as stable shard slices; everything
/// the matching paths consume derives from [`SubscriptionStore::shards`],
/// which is what keeps serial and batch outcomes identical across
/// backends.
pub trait SubscriptionStore: fmt::Debug + Send + Sync {
    /// Short backend name for stats/diagnostics.
    fn backend_name(&self) -> &'static str;

    /// Number of shards the layout exposes (1 for contiguous).
    fn shard_count(&self) -> usize;

    /// Number of stored subscriptions.
    fn len(&self) -> usize;

    /// `true` iff no subscriptions are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts or replaces the record for `record.user_id`.
    fn upsert(&mut self, record: StoredSubscription) -> UpsertOutcome;

    /// Removes the record for `user_id`; `false` if absent.
    fn remove(&mut self, user_id: u64) -> bool;

    /// Evicts every record with `epoch < min_epoch`, returning how many
    /// were dropped.
    fn evict_before(&mut self, min_epoch: u64) -> usize;

    /// The stored records as one slice per shard, in a deterministic
    /// order (shards in index order; records in insertion order, with
    /// removals allowed to backfill).
    fn shards(&self) -> Vec<&[StoredSubscription]>;

    /// The matching work units: every shard split into `chunk_size`-sized
    /// chunks, in shard order. Both the serial and the parallel matching
    /// paths walk exactly this list, which makes their outcomes identical
    /// by construction.
    fn chunked(&self, chunk_size: usize) -> Vec<&[StoredSubscription]> {
        self.shards()
            .into_iter()
            .flat_map(|shard| shard.chunks(chunk_size.max(1)))
            .collect()
    }
}

/// The contiguous backend: one `Vec` in arrival order.
#[derive(Debug, Default)]
pub struct VecStore {
    items: Vec<StoredSubscription>,
}

impl VecStore {
    /// An empty contiguous store.
    pub fn new() -> Self {
        VecStore::default()
    }
}

impl SubscriptionStore for VecStore {
    fn backend_name(&self) -> &'static str {
        "contiguous"
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn upsert(&mut self, record: StoredSubscription) -> UpsertOutcome {
        match self.items.iter_mut().find(|r| r.user_id == record.user_id) {
            Some(slot) => {
                *slot = record;
                UpsertOutcome::Replaced
            }
            None => {
                self.items.push(record);
                UpsertOutcome::Inserted
            }
        }
    }

    fn remove(&mut self, user_id: u64) -> bool {
        let before = self.items.len();
        self.items.retain(|r| r.user_id != user_id);
        self.items.len() < before
    }

    fn evict_before(&mut self, min_epoch: u64) -> usize {
        let before = self.items.len();
        self.items.retain(|r| r.epoch >= min_epoch);
        before - self.items.len()
    }

    fn shards(&self) -> Vec<&[StoredSubscription]> {
        vec![&self.items]
    }
}

/// The hash-sharded backend: `user_id` hashes to a shard, a per-user
/// index gives O(1) upsert/remove (removal backfills via `swap_remove`).
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Vec<StoredSubscription>>,
    /// `user_id` → position within its (hash-determined) shard.
    index: HashMap<u64, usize>,
}

impl ShardedStore {
    /// An empty store with `shards` hash buckets.
    ///
    /// # Panics
    /// Panics if `shards == 0` (the builder rejects that earlier with
    /// `SlaError::ZeroShardCount`).
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        ShardedStore {
            shards: (0..shards).map(|_| Vec::new()).collect(),
            index: HashMap::new(),
        }
    }

    /// Deterministic shard of a user id (Fibonacci multiplicative hash —
    /// stable across runs and platforms, unlike `RandomState`).
    fn shard_of(&self, user_id: u64) -> usize {
        (user_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % self.shards.len()
    }
}

impl SubscriptionStore for ShardedStore {
    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn upsert(&mut self, record: StoredSubscription) -> UpsertOutcome {
        let shard = self.shard_of(record.user_id);
        match self.index.get(&record.user_id) {
            Some(&pos) => {
                self.shards[shard][pos] = record;
                UpsertOutcome::Replaced
            }
            None => {
                self.index.insert(record.user_id, self.shards[shard].len());
                self.shards[shard].push(record);
                UpsertOutcome::Inserted
            }
        }
    }

    fn remove(&mut self, user_id: u64) -> bool {
        let Some(pos) = self.index.remove(&user_id) else {
            return false;
        };
        let shard = self.shard_of(user_id);
        self.shards[shard].swap_remove(pos);
        if let Some(moved) = self.shards[shard].get(pos) {
            self.index.insert(moved.user_id, pos);
        }
        true
    }

    fn evict_before(&mut self, min_epoch: u64) -> usize {
        let mut evicted = 0;
        for shard in &mut self.shards {
            let before = shard.len();
            shard.retain(|r| {
                let keep = r.epoch >= min_epoch;
                if !keep {
                    self.index.remove(&r.user_id);
                }
                keep
            });
            if shard.len() < before {
                evicted += before - shard.len();
                // retain preserves order but shifts positions; re-index
                // the survivors of this shard (eviction is rare, O(shard)
                // is fine).
                for (pos, r) in shard.iter().enumerate() {
                    self.index.insert(r.user_id, pos);
                }
            }
        }
        evicted
    }

    fn shards(&self) -> Vec<&[StoredSubscription]> {
        self.shards.iter().map(Vec::as_slice).collect()
    }
}

/// Point-in-time snapshot of a Service Provider's store and lifecycle
/// counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Backend name (`"contiguous"` or `"sharded"`).
    pub backend: &'static str,
    /// Number of shards.
    pub shards: usize,
    /// Live subscriptions.
    pub subscriptions: usize,
    /// Current epoch.
    pub epoch: u64,
    /// TTL in epochs, if eviction is enabled.
    pub ttl_epochs: Option<u64>,
    /// Lifetime count of first-time inserts.
    pub inserted: u64,
    /// Lifetime count of upserts that replaced an existing ciphertext.
    pub replaced: u64,
    /// Lifetime count of explicit unsubscribes.
    pub unsubscribed: u64,
    /// Lifetime count of TTL evictions.
    pub evicted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_hve::{AttributeVector, HveScheme};
    use sla_pairing::SimulatedGroup;

    /// One real (tiny) ciphertext, cloned into every test record — the
    /// store treats it as opaque bytes.
    fn fixture_ciphertext() -> Ciphertext {
        let mut rng = StdRng::seed_from_u64(1);
        let grp = SimulatedGroup::generate(24, &mut rng);
        let scheme = HveScheme::new(&grp, 2);
        let (pk, _) = scheme.setup(&mut rng);
        let attr = AttributeVector::from_bits(&[true, false]);
        scheme.encrypt(&pk, &attr, &scheme.encode_message(1), &mut rng)
    }

    fn record(ct: &Ciphertext, user_id: u64, epoch: u64) -> StoredSubscription {
        StoredSubscription {
            user_id,
            ciphertext: ct.clone(),
            expected: GtElem::identity(),
            epoch,
        }
    }

    fn ids_in_order(store: &dyn SubscriptionStore) -> Vec<u64> {
        store
            .shards()
            .into_iter()
            .flatten()
            .map(|r| r.user_id)
            .collect()
    }

    fn backends() -> Vec<Box<dyn SubscriptionStore>> {
        vec![
            Box::new(VecStore::new()),
            Box::new(ShardedStore::new(4)),
            Box::new(ShardedStore::new(1)),
        ]
    }

    #[test]
    fn upsert_replaces_single_record_per_user() {
        let ct = fixture_ciphertext();
        for mut store in backends() {
            assert_eq!(store.upsert(record(&ct, 7, 0)), UpsertOutcome::Inserted);
            assert_eq!(store.upsert(record(&ct, 8, 0)), UpsertOutcome::Inserted);
            assert_eq!(store.upsert(record(&ct, 7, 3)), UpsertOutcome::Replaced);
            assert_eq!(store.len(), 2, "{}", store.backend_name());
            let epochs: Vec<u64> = store
                .shards()
                .into_iter()
                .flatten()
                .filter(|r| r.user_id == 7)
                .map(|r| r.epoch)
                .collect();
            assert_eq!(epochs, vec![3], "{}", store.backend_name());
        }
    }

    #[test]
    fn remove_and_eviction() {
        let ct = fixture_ciphertext();
        for mut store in backends() {
            for id in 0..10 {
                store.upsert(record(&ct, id, id % 3));
            }
            assert!(store.remove(4));
            assert!(!store.remove(4));
            assert_eq!(store.len(), 9);
            // evict epochs 0 (ids 0,3,6,9) — id 4 already gone from epoch-1s
            let evicted = store.evict_before(1);
            assert_eq!(evicted, 4, "{}", store.backend_name());
            assert_eq!(store.len(), 5);
            let mut left = ids_in_order(store.as_ref());
            left.sort_unstable();
            assert_eq!(left, vec![1, 2, 5, 7, 8]);
            // the survivors are still individually addressable
            for id in [1, 2, 5, 7, 8] {
                assert!(store.remove(id), "{}: {id}", store.backend_name());
            }
            assert!(store.is_empty());
        }
    }

    #[test]
    fn chunked_covers_every_record_exactly_once() {
        let ct = fixture_ciphertext();
        for mut store in backends() {
            for id in 0..23 {
                store.upsert(record(&ct, id, 0));
            }
            for chunk_size in [1, 4, 7, 100] {
                let mut seen: Vec<u64> = store
                    .chunked(chunk_size)
                    .into_iter()
                    .flatten()
                    .map(|r| r.user_id)
                    .collect();
                assert_eq!(seen.len(), 23, "{}", store.backend_name());
                assert_eq!(seen, ids_in_order(store.as_ref()), "chunking reorders");
                seen.sort_unstable();
                assert_eq!(seen, (0..23).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn sharded_distribution_is_deterministic_and_total() {
        let mut a = ShardedStore::new(8);
        let mut b = ShardedStore::new(8);
        let ct = fixture_ciphertext();
        for id in 0..100 {
            a.upsert(record(&ct, id, 0));
            b.upsert(record(&ct, id, 0));
        }
        assert_eq!(ids_in_order(&a), ids_in_order(&b));
        assert!(a.shards().iter().filter(|s| !s.is_empty()).count() > 1);
    }
}
