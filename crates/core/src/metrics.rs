//! Analytic cost evaluation for the figure experiments.
//!
//! The paper's §7 metric is "the number of HVE bilinear map pairing
//! operations incurred by each technique", presented as absolute counts
//! and as percentage improvement over the basic fixed-length scheme of
//! \[14\]. Evaluating a token with `k` non-star bits against one ciphertext
//! costs `1 + 2k` pairings (§2.1), so workload costs are computable
//! without running cryptography; `AlertSystem` tests prove these numbers
//! equal the live engine's counters.

use serde::{Deserialize, Serialize};
use sla_encoding::CellCodebook;

/// Cost of one encoder on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCost {
    /// Encoder name.
    pub encoder: String,
    /// Workload label.
    pub workload: String,
    /// Total tokens issued across all zones.
    pub tokens: u64,
    /// Total non-star bits across all tokens.
    pub non_star_bits: u64,
    /// Total pairings against `n_ciphertexts` ciphertexts per zone.
    pub pairings: u64,
}

impl WorkloadCost {
    /// Percentage improvement of `self` over a baseline cost (the paper's
    /// y-axis in Figs. 9b/10/11/12): `100·(base − self)/base`.
    pub fn improvement_vs(&self, baseline: &WorkloadCost) -> f64 {
        if baseline.pairings == 0 {
            return 0.0;
        }
        100.0 * (baseline.pairings as f64 - self.pairings as f64) / baseline.pairings as f64
    }
}

/// Evaluates one codebook over a batch of alert zones (cell-index lists)
/// against `n_ciphertexts` stored ciphertexts per zone.
pub fn evaluate_workload(
    codebook: &CellCodebook,
    workload_label: &str,
    zones: &[Vec<usize>],
    n_ciphertexts: u64,
) -> WorkloadCost {
    let mut tokens = 0u64;
    let mut non_star_bits = 0u64;
    let mut pairings = 0u64;
    for zone in zones {
        let patterns = codebook.tokens_for(zone);
        tokens += patterns.len() as u64;
        non_star_bits += patterns
            .iter()
            .map(|p| p.non_star_count() as u64)
            .sum::<u64>();
        pairings += patterns
            .iter()
            .map(|p| 1 + 2 * p.non_star_count() as u64)
            .sum::<u64>()
            * n_ciphertexts;
    }
    WorkloadCost {
        encoder: codebook.kind().name(),
        workload: workload_label.to_string(),
        tokens,
        non_star_bits,
        pairings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_encoding::EncoderKind;

    #[test]
    fn cost_arithmetic() {
        let probs = [0.1, 0.2, 0.5, 0.4, 0.6];
        let cb = CellCodebook::build(EncoderKind::Huffman, &probs);
        // §3.3 example zone: cells with indexes 001,100,110 -> tokens
        // {001, 1**}: 2 tokens, 4 non-star bits, (7+3) pairings/ct.
        let cost = evaluate_workload(&cb, "paper", &[vec![1, 2, 4]], 100);
        assert_eq!(cost.tokens, 2);
        assert_eq!(cost.non_star_bits, 4);
        assert_eq!(cost.pairings, 1_000);
    }

    #[test]
    fn improvement_percentage() {
        let a = WorkloadCost {
            encoder: "huffman".into(),
            workload: "w".into(),
            tokens: 1,
            non_star_bits: 1,
            pairings: 60,
        };
        let b = WorkloadCost {
            encoder: "basic".into(),
            workload: "w".into(),
            tokens: 2,
            non_star_bits: 4,
            pairings: 100,
        };
        assert!((a.improvement_vs(&b) - 40.0).abs() < 1e-12);
        assert!((b.improvement_vs(&b) - 0.0).abs() < 1e-12);
        // negative when worse
        assert!(b.improvement_vs(&a) < 0.0);
    }

    #[test]
    fn multiple_zones_accumulate() {
        let probs = [0.1, 0.2, 0.5, 0.4, 0.6];
        let cb = CellCodebook::build(EncoderKind::Huffman, &probs);
        let single = evaluate_workload(&cb, "w", &[vec![2]], 10);
        let double = evaluate_workload(&cb, "w", &[vec![2], vec![2]], 10);
        assert_eq!(double.pairings, 2 * single.pairings);
        assert_eq!(double.tokens, 2 * single.tokens);
    }
}
