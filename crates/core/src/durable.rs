//! [`PersistentStore`]: the durable subscription-store backend.
//!
//! Layered design: the authoritative *matching* state is an in-memory
//! [`ConcurrentShardedStore`] (identical layout and shard hash to the
//! volatile concurrent backend, so match outcomes are byte-identical),
//! and every mutation is additionally appended to an `sla-persist`
//! [`DurableLog`] before it is applied. Matching therefore runs at
//! exactly in-memory speed — reads never touch the log — and **only
//! mutations pay the durability cost** (one codec pass + one buffered
//! write, plus an fsync per the [`FlushPolicy`]).
//!
//! ## Ordering
//!
//! A single `write_gate` mutex serializes mutations, so the WAL append
//! order equals the in-memory apply order — replaying the log is
//! guaranteed to rebuild the exact live set. Reads take only the inner
//! store's shard read locks and never the gate, preserving the
//! churn-while-matching property; lock order is always gate → one shard
//! lock, and readers take a single shard lock, so no interleaving can
//! deadlock. (This deliberately trades write concurrency for replay
//! correctness: shard-parallel writers would need a per-shard log to
//! keep ordering, which the single-directory layout does not provide.)
//!
//! ## Compaction
//!
//! When the ops appended since the last snapshot exceed the configured
//! budget, the WAL is rotated (under the gate, so the cut is exact) and
//! the live record set is handed to a background thread that writes,
//! fsyncs and atomically promotes a new snapshot, then deletes the
//! stale WAL generations. See `sla_persist::log` for the crash matrix.

use crate::error::{SlaError, SlaResult};
use crate::store::{
    ConcurrentShardedStore, ConcurrentSubscriptionStore, StoredSubscription, UpsertOutcome,
};
use sla_persist::{DurableLog, FlushPolicy, LogOptions, Record, WalOp};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Lock shards of the in-memory index backing the durable store — same
/// default the churn benchmarks use for the volatile concurrent backend.
const MEMORY_SHARDS: usize = 16;

/// Ops appended since the last snapshot before compaction triggers.
const COMPACT_AFTER_OPS: usize = 4096;

/// The durable backend behind [`crate::StoreBackend::Persistent`] (see
/// the module docs for the design).
#[derive(Debug)]
pub struct PersistentStore {
    /// The in-memory matching index (authoritative for reads).
    inner: ConcurrentShardedStore,
    /// The durable log (authoritative across restarts).
    log: DurableLog,
    /// Serializes mutations so WAL order equals apply order.
    write_gate: Mutex<()>,
    /// The epoch recovered at open (what the Service Provider resumes
    /// from), or 0 for a fresh directory.
    recovered_epoch: Option<u64>,
    /// The latest epoch noted, snapshotted alongside the records.
    epoch: AtomicU64,
}

fn to_wire(record: &StoredSubscription) -> Record {
    Record {
        user_id: record.user_id,
        epoch: record.epoch,
        expected: record.expected.clone(),
        ciphertext: record.ciphertext.clone(),
    }
}

fn from_wire(record: Record) -> StoredSubscription {
    StoredSubscription {
        user_id: record.user_id,
        ciphertext: record.ciphertext,
        expected: record.expected,
        epoch: record.epoch,
    }
}

impl PersistentStore {
    /// Opens (creating if necessary) the durable store at `dir`,
    /// recovering the subscription base from snapshot + WAL replay. A
    /// torn final WAL record is truncated away; corruption anywhere
    /// else surfaces as [`SlaError::Corrupt`].
    pub fn open(dir: &Path, flush: FlushPolicy) -> SlaResult<Self> {
        Self::open_with(dir, flush, COMPACT_AFTER_OPS)
    }

    /// [`Self::open`] with an explicit compaction budget (tests drive
    /// compaction with small budgets).
    pub fn open_with(dir: &Path, flush: FlushPolicy, compact_after_ops: usize) -> SlaResult<Self> {
        let (log, recovered) = DurableLog::open(
            dir,
            LogOptions {
                flush,
                compact_after_ops,
            },
        )?;
        let inner = ConcurrentShardedStore::new(MEMORY_SHARDS);
        let fresh = recovered.records.is_empty() && recovered.epoch == 0;
        for record in recovered.records {
            inner.upsert(from_wire(record));
        }
        Ok(PersistentStore {
            inner,
            log,
            write_gate: Mutex::new(()),
            recovered_epoch: (!fresh).then_some(recovered.epoch),
            epoch: AtomicU64::new(recovered.epoch),
        })
    }

    fn gate(&self) -> MutexGuard<'_, ()> {
        self.write_gate
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Appends `op` under the (held) gate; when the compaction budget is
    /// exhausted, rotates the WAL and hands the live set to the
    /// background snapshot writer.
    ///
    /// Callers must apply the op to the in-memory index **before**
    /// calling this: the compaction snapshot is collected from the inner
    /// store here, so an op logged before it was applied would be
    /// missing from a snapshot whose covered WAL generation (holding the
    /// op) compaction then deletes — losing the op across a restart.
    fn append_gated(&self, op: &WalOp) {
        if self.log.append(op) && !self.log.compaction_in_flight() {
            let mut live = Vec::with_capacity(self.inner.len());
            for shard in 0..self.inner.shard_count() {
                self.inner.read_shard(shard, &mut |records| {
                    live.extend(records.iter().map(to_wire));
                });
            }
            if let Err(e) = self.log.compact(live, self.epoch.load(Ordering::Relaxed)) {
                self.log.defer_error(e);
            }
        }
    }
}

impl ConcurrentSubscriptionStore for PersistentStore {
    fn backend_name(&self) -> &'static str {
        "persistent"
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn upsert(&self, record: StoredSubscription) -> UpsertOutcome {
        let _gate = self.gate();
        // Apply-then-log (see `append_gated`): the wire image is taken
        // first, the in-memory index updated, and only then the op
        // logged, so a compaction triggered by this very append
        // snapshots a live set that already contains the record.
        let op = WalOp::Upsert(to_wire(&record));
        let outcome = self.inner.upsert(record);
        self.append_gated(&op);
        outcome
    }

    fn remove(&self, user_id: u64) -> bool {
        let _gate = self.gate();
        // Logging an absent removal would be harmless on replay (it is
        // idempotent) but would bloat the WAL under repeated misses, so
        // check membership first — the gate makes the check-then-log
        // window race-free.
        if !self.inner.remove(user_id) {
            return false;
        }
        self.append_gated(&WalOp::Remove { user_id });
        true
    }

    fn evict_before(&self, min_epoch: u64) -> usize {
        let _gate = self.gate();
        let evicted = self.inner.evict_before(min_epoch);
        if evicted > 0 {
            self.append_gated(&WalOp::EvictBefore { min_epoch });
        }
        evicted
    }

    fn read_shard(&self, shard: usize, f: &mut dyn FnMut(&[StoredSubscription])) {
        self.inner.read_shard(shard, f);
    }

    fn note_epoch(&self, epoch: u64) {
        let _gate = self.gate();
        // fetch_max, not store: the Service Provider's epoch counter is
        // bumped *outside* this gate, so two racing advances can arrive
        // here out of order — the snapshot epoch must never regress
        // (WAL replay already takes the max of the Epoch ops).
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
        self.append_gated(&WalOp::Epoch { epoch });
    }

    fn recovered_epoch(&self) -> Option<u64> {
        self.recovered_epoch
    }

    fn sync(&self) -> SlaResult<()> {
        self.log.sync().map_err(SlaError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_hve::{AttributeVector, Ciphertext, HveScheme};
    use sla_pairing::{GtElem, SimulatedGroup};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64 as TestSeq, Ordering as TestOrdering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: TestSeq = TestSeq::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sla-core-durable-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, TestOrdering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture_ciphertext() -> Ciphertext {
        let mut rng = StdRng::seed_from_u64(1);
        let grp = SimulatedGroup::generate(24, &mut rng);
        let scheme = HveScheme::new(&grp, 2);
        let (pk, _) = scheme.setup(&mut rng);
        let attr = AttributeVector::from_bits(&[true, false]);
        scheme.encrypt(&pk, &attr, &scheme.encode_message(1), &mut rng)
    }

    fn record(ct: &Ciphertext, user_id: u64, epoch: u64) -> StoredSubscription {
        StoredSubscription {
            user_id,
            ciphertext: ct.clone(),
            expected: GtElem::identity(),
            epoch,
        }
    }

    fn all_ids(store: &PersistentStore) -> Vec<u64> {
        let mut ids = Vec::new();
        for shard in 0..store.shard_count() {
            store.read_shard(shard, &mut |records| {
                ids.extend(records.iter().map(|r| r.user_id));
            });
        }
        ids.sort_unstable();
        ids
    }

    #[test]
    fn lifecycle_survives_reopen() {
        let dir = temp_dir("lifecycle");
        let ct = fixture_ciphertext();
        {
            let store = PersistentStore::open(&dir, FlushPolicy::EveryOp).unwrap();
            assert_eq!(store.recovered_epoch(), None, "fresh directory");
            for id in 0..10 {
                assert_eq!(store.upsert(record(&ct, id, 0)), UpsertOutcome::Inserted);
            }
            assert_eq!(store.upsert(record(&ct, 3, 2)), UpsertOutcome::Replaced);
            assert!(store.remove(4));
            assert!(!store.remove(4));
            store.note_epoch(1);
            assert_eq!(store.evict_before(1), 8, "epoch-0 records evicted");
            store.sync().unwrap();
        }
        let store = PersistentStore::open(&dir, FlushPolicy::EveryOp).unwrap();
        assert_eq!(all_ids(&store), vec![3]);
        assert_eq!(store.recovered_epoch(), Some(1));
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_layout_matches_volatile_concurrent_store() {
        // Same shard hash + count => identical shard-walk order, which
        // is what keeps match outcomes byte-identical across a restart.
        let dir = temp_dir("layout");
        let ct = fixture_ciphertext();
        let volatile = ConcurrentShardedStore::new(MEMORY_SHARDS);
        {
            let store = PersistentStore::open(&dir, FlushPolicy::Manual).unwrap();
            for id in [9, 2, 77, 41, 5, 63, 18] {
                store.upsert(record(&ct, id, 0));
                volatile.upsert(record(&ct, id, 0));
            }
            store.sync().unwrap();
        }
        let store = PersistentStore::open(&dir, FlushPolicy::Manual).unwrap();
        let mut volatile_ids = Vec::new();
        for shard in 0..volatile.shard_count() {
            volatile.read_shard(shard, &mut |records| {
                volatile_ids.extend(records.iter().map(|r| r.user_id));
            });
        }
        let mut persistent_ids = Vec::new();
        for shard in 0..store.shard_count() {
            store.read_shard(shard, &mut |records| {
                persistent_ids.extend(records.iter().map(|r| r.user_id));
            });
        }
        assert_eq!(persistent_ids, volatile_ids, "shard-walk order");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_triggering_upsert_survives_restart() {
        // Regression: the append that trips the op budget used to be
        // logged *before* it was applied to the in-memory index, so the
        // compaction snapshot (collected from that index) missed it
        // while its WAL op sat in the covered generation compaction
        // deletes — silently losing exactly that record on reopen.
        let dir = temp_dir("trigger");
        let ct = fixture_ciphertext();
        {
            let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 8).unwrap();
            for id in 0..8 {
                // All ids distinct: the 8th (id 7) trips the budget.
                store.upsert(record(&ct, id, 0));
            }
            store.sync().unwrap();
        }
        let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 8).unwrap();
        assert_eq!(
            all_ids(&store),
            (0..8).collect::<Vec<_>>(),
            "the compaction-triggering record must survive the restart"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_epoch_notes_never_regress_the_snapshot_epoch() {
        // Regression: two racing `advance_epoch_shared` calls can reach
        // `note_epoch` out of order (the SP bumps its counter outside
        // the write gate). The snapshot epoch must keep the maximum, or
        // a compaction that deletes the covered WAL generation (and the
        // higher Epoch op with it) would recover a regressed epoch.
        let dir = temp_dir("epoch-race");
        let ct = fixture_ciphertext();
        {
            let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 4).unwrap();
            store.note_epoch(6);
            store.note_epoch(5); // out-of-order arrival
            store.upsert(record(&ct, 1, 6));
            store.upsert(record(&ct, 2, 6)); // 4th op: triggers compaction
            store.sync().unwrap();
        }
        assert!(dir.join("snapshot.bin").exists(), "compaction promoted");
        let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 4).unwrap();
        assert_eq!(store.recovered_epoch(), Some(6), "epoch must not regress");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_truncates_wal_and_preserves_state() {
        let dir = temp_dir("compact");
        let ct = fixture_ciphertext();
        {
            let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 8).unwrap();
            for round in 0..4u64 {
                for id in 0..10 {
                    store.upsert(record(&ct, id, round));
                }
            }
            store.sync().unwrap();
        }
        assert!(dir.join("snapshot.bin").exists(), "compaction promoted");
        let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 8).unwrap();
        assert_eq!(all_ids(&store), (0..10).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
