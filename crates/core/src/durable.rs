//! [`PersistentStore`]: the durable subscription-store backend.
//!
//! Layered design: the authoritative *matching* state is an in-memory
//! [`ConcurrentShardedStore`] (identical layout and shard hash to the
//! volatile concurrent backend, so match outcomes are byte-identical),
//! and every mutation is additionally appended to an `sla-persist`
//! [`ShardedWal`] — one durability lane per memory shard, lane-aligned
//! with the shard map — before it is applied. Matching therefore runs
//! at exactly in-memory speed — reads never touch the log — and **only
//! mutations pay the durability cost** (one codec pass + one buffered
//! write to the owning lane, plus an fsync per the [`FlushPolicy`]).
//!
//! ## Ordering
//!
//! One gate mutex **per shard** serializes that shard's mutations, so
//! each lane's WAL append order equals its shard's in-memory apply
//! order — replaying the lanes is guaranteed to rebuild the exact live
//! set. There is no global serialization anywhere: a user's upsert
//! contends only with writers of the same shard, so the 16-way write
//! parallelism of the volatile concurrent backend survives durability.
//! Cross-shard order is deliberately unconstrained — every user lives
//! in exactly one shard, so ops on different shards commute (the
//! cross-backend equivalence suite pins this). Ops that span shards
//! (`note_epoch`, `evict_before`) are logged lane-by-lane under each
//! lane's gate; both replay idempotently and order-free across lanes.
//!
//! Reads take only the inner store's shard read locks and never a gate,
//! preserving the churn-while-matching property; lock order is always
//! one gate → that shard's lock, and readers take a single shard lock,
//! so no interleaving can deadlock.
//!
//! ## Compaction
//!
//! Budgets are per lane: when the ops appended to a lane since its last
//! snapshot exceed `compact_after_ops / shards`, that lane's WAL is
//! rotated (under its gate, so the cut is exact) and the shard's live
//! records are handed to a background thread that writes, fsyncs and
//! atomically promotes a new **paged** snapshot for that lane only,
//! then deletes its stale WAL generations. Other lanes keep appending
//! throughout. See `sla_persist::sharded` for the crash matrix and the
//! migration of pre-sharding directories.

use crate::error::{SlaError, SlaResult};
use crate::store::{
    shard_index, ConcurrentShardedStore, ConcurrentSubscriptionStore, DurabilityLaneStats,
    StoredSubscription, UpsertOutcome,
};
use sla_persist::{FlushPolicy, LogOptions, Record, ShardedWal, WalOp};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Lock shards of the in-memory index backing the durable store — same
/// default the churn benchmarks use for the volatile concurrent backend.
/// Also the number of durability lanes: lanes are aligned 1:1 with the
/// memory shards.
const MEMORY_SHARDS: usize = 16;

/// Ops appended across all lanes since their last snapshots before
/// compaction triggers (divided evenly into per-lane budgets).
const COMPACT_AFTER_OPS: usize = 4096;

/// The durable backend behind [`crate::StoreBackend::Persistent`] (see
/// the module docs for the design).
#[derive(Debug)]
pub struct PersistentStore {
    /// The in-memory matching index (authoritative for reads).
    inner: ConcurrentShardedStore,
    /// The durable lanes (authoritative across restarts), one per
    /// memory shard.
    wal: ShardedWal,
    /// Per-shard gates: gate `s` serializes shard `s`'s mutations so
    /// lane `s`'s WAL order equals shard `s`'s apply order. No global
    /// gate exists.
    gates: Vec<Mutex<()>>,
    /// The epoch recovered at open (what the Service Provider resumes
    /// from), or 0 for a fresh directory.
    recovered_epoch: Option<u64>,
    /// The latest epoch noted, snapshotted alongside the records.
    epoch: AtomicU64,
}

fn to_wire(record: &StoredSubscription) -> Record {
    Record {
        user_id: record.user_id,
        epoch: record.epoch,
        expected: record.expected.clone(),
        ciphertext: record.ciphertext.clone(),
    }
}

fn from_wire(record: Record) -> StoredSubscription {
    StoredSubscription {
        user_id: record.user_id,
        ciphertext: record.ciphertext,
        expected: record.expected,
        epoch: record.epoch,
    }
}

impl PersistentStore {
    /// Opens (creating, or migrating a pre-sharding directory, if
    /// necessary) the durable store at `dir`, recovering the
    /// subscription base from every lane's snapshot + WAL replay in
    /// parallel. A torn final WAL record in any lane is truncated away;
    /// corruption anywhere else surfaces as [`SlaError::Corrupt`].
    pub fn open(dir: &Path, flush: FlushPolicy) -> SlaResult<Self> {
        Self::open_with(dir, flush, COMPACT_AFTER_OPS)
    }

    /// [`Self::open`] with an explicit total compaction budget, divided
    /// evenly into per-lane budgets (tests drive compaction with small
    /// budgets).
    pub fn open_with(dir: &Path, flush: FlushPolicy, compact_after_ops: usize) -> SlaResult<Self> {
        let (wal, recovered) = ShardedWal::open(
            dir,
            MEMORY_SHARDS,
            shard_index,
            LogOptions {
                flush,
                compact_after_ops: (compact_after_ops / MEMORY_SHARDS).max(1),
            },
        )?;
        let inner = ConcurrentShardedStore::new(MEMORY_SHARDS);
        let fresh = recovered.records.is_empty() && recovered.epoch == 0;
        for record in recovered.records {
            inner.upsert(from_wire(record));
        }
        Ok(PersistentStore {
            inner,
            wal,
            gates: (0..MEMORY_SHARDS).map(|_| Mutex::new(())).collect(),
            recovered_epoch: (!fresh).then_some(recovered.epoch),
            epoch: AtomicU64::new(recovered.epoch),
        })
    }

    fn gate(&self, shard: usize) -> MutexGuard<'_, ()> {
        self.gates[shard]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Appends `op` to `shard`'s lane under that shard's (held) gate;
    /// when the lane's compaction budget is exhausted, rotates its WAL
    /// and hands the shard's live records to the background snapshot
    /// writer. Only this shard is touched — other lanes compact on
    /// their own schedules.
    ///
    /// Callers must apply the op to the in-memory index **before**
    /// calling this: the compaction snapshot is collected from the inner
    /// store here, so an op logged before it was applied would be
    /// missing from a snapshot whose covered WAL generation (holding the
    /// op) compaction then deletes — losing the op across a restart.
    fn append_gated(&self, shard: usize, op: &WalOp) {
        if self.wal.append(shard, op) && !self.wal.compaction_in_flight(shard) {
            let mut live = Vec::new();
            self.inner.read_shard(shard, &mut |records| {
                live.extend(records.iter().map(to_wire));
            });
            if let Err(e) = self
                .wal
                .compact(shard, live, self.epoch.load(Ordering::Relaxed))
            {
                self.wal.defer_error(shard, e);
            }
        }
    }
}

impl ConcurrentSubscriptionStore for PersistentStore {
    fn backend_name(&self) -> &'static str {
        "persistent"
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn upsert(&self, record: StoredSubscription) -> UpsertOutcome {
        let shard = shard_index(record.user_id, MEMORY_SHARDS);
        let _gate = self.gate(shard);
        // Apply-then-log (see `append_gated`): the wire image is taken
        // first, the in-memory index updated, and only then the op
        // logged, so a compaction triggered by this very append
        // snapshots a live set that already contains the record.
        let op = WalOp::Upsert(to_wire(&record));
        let outcome = self.inner.upsert(record);
        self.append_gated(shard, &op);
        outcome
    }

    fn remove(&self, user_id: u64) -> bool {
        let shard = shard_index(user_id, MEMORY_SHARDS);
        let _gate = self.gate(shard);
        // Logging an absent removal would be harmless on replay (it is
        // idempotent) but would bloat the WAL under repeated misses, so
        // check membership first — the gate makes the check-then-log
        // window race-free.
        if !self.inner.remove(user_id) {
            return false;
        }
        self.append_gated(shard, &WalOp::Remove { user_id });
        true
    }

    fn evict_before(&self, min_epoch: u64) -> usize {
        // Shard-by-shard under each shard's gate: eviction of shard s
        // and a racing upsert into shard t interleave freely (they
        // commute), while within one shard the gate keeps lane order
        // equal to apply order. The op is logged only in lanes that
        // actually evicted something (replay is a per-record predicate,
        // so lanes that skipped it recover identically).
        let mut evicted = 0;
        for shard in 0..self.inner.shard_count() {
            let _gate = self.gate(shard);
            let dropped = self.inner.evict_shard_before(shard, min_epoch);
            if dropped > 0 {
                self.append_gated(shard, &WalOp::EvictBefore { min_epoch });
            }
            evicted += dropped;
        }
        evicted
    }

    fn read_shard(&self, shard: usize, f: &mut dyn FnMut(&[StoredSubscription])) {
        self.inner.read_shard(shard, f);
    }

    fn note_epoch(&self, epoch: u64) {
        // fetch_max, not store: the Service Provider's epoch counter is
        // bumped *outside* the gates, so two racing advances can arrive
        // here out of order — the snapshot epoch must never regress
        // (WAL replay already takes the max of the Epoch ops).
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
        // Broadcast to every lane, each under its own gate, so every
        // lane independently recovers the full service epoch no matter
        // which subset of lanes survives to replay (lane recovery takes
        // the max across lanes).
        for shard in 0..self.inner.shard_count() {
            let _gate = self.gate(shard);
            self.append_gated(shard, &WalOp::Epoch { epoch });
        }
    }

    fn recovered_epoch(&self) -> Option<u64> {
        self.recovered_epoch
    }

    fn sync(&self) -> SlaResult<()> {
        // Aggregated across lanes: every failed lane's deferred error is
        // surfaced (one healthy lane can never mask a broken one).
        self.wal.sync().map_err(SlaError::from)
    }

    fn durability_lanes(&self) -> Vec<DurabilityLaneStats> {
        self.wal
            .lane_status()
            .into_iter()
            .map(|lane| DurabilityLaneStats {
                shard: lane.shard,
                wal_generation: lane.generation,
                depth: lane.depth,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_hve::{AttributeVector, Ciphertext, HveScheme};
    use sla_pairing::{GtElem, SimulatedGroup};
    use sla_persist::PersistError;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64 as TestSeq, Ordering as TestOrdering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: TestSeq = TestSeq::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sla-core-durable-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, TestOrdering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture_ciphertext() -> Ciphertext {
        let mut rng = StdRng::seed_from_u64(1);
        let grp = SimulatedGroup::generate(24, &mut rng);
        let scheme = HveScheme::new(&grp, 2);
        let (pk, _) = scheme.setup(&mut rng);
        let attr = AttributeVector::from_bits(&[true, false]);
        scheme.encrypt(&pk, &attr, &scheme.encode_message(1), &mut rng)
    }

    fn record(ct: &Ciphertext, user_id: u64, epoch: u64) -> StoredSubscription {
        StoredSubscription {
            user_id,
            ciphertext: ct.clone(),
            expected: GtElem::identity(),
            epoch,
        }
    }

    fn all_ids(store: &PersistentStore) -> Vec<u64> {
        let mut ids = Vec::new();
        for shard in 0..store.shard_count() {
            store.read_shard(shard, &mut |records| {
                ids.extend(records.iter().map(|r| r.user_id));
            });
        }
        ids.sort_unstable();
        ids
    }

    #[test]
    fn lifecycle_survives_reopen() {
        let dir = temp_dir("lifecycle");
        let ct = fixture_ciphertext();
        {
            let store = PersistentStore::open(&dir, FlushPolicy::EveryOp).unwrap();
            assert_eq!(store.recovered_epoch(), None, "fresh directory");
            for id in 0..10 {
                assert_eq!(store.upsert(record(&ct, id, 0)), UpsertOutcome::Inserted);
            }
            assert_eq!(store.upsert(record(&ct, 3, 2)), UpsertOutcome::Replaced);
            assert!(store.remove(4));
            assert!(!store.remove(4));
            store.note_epoch(1);
            assert_eq!(store.evict_before(1), 8, "epoch-0 records evicted");
            store.sync().unwrap();
        }
        let store = PersistentStore::open(&dir, FlushPolicy::EveryOp).unwrap();
        assert_eq!(all_ids(&store), vec![3]);
        assert_eq!(store.recovered_epoch(), Some(1));
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_layout_matches_volatile_concurrent_store() {
        // Same shard hash + count => identical shard-walk order, which
        // is what keeps match outcomes byte-identical across a restart.
        let dir = temp_dir("layout");
        let ct = fixture_ciphertext();
        let volatile = ConcurrentShardedStore::new(MEMORY_SHARDS);
        {
            let store = PersistentStore::open(&dir, FlushPolicy::Manual).unwrap();
            for id in [9, 2, 77, 41, 5, 63, 18] {
                store.upsert(record(&ct, id, 0));
                volatile.upsert(record(&ct, id, 0));
            }
            store.sync().unwrap();
        }
        let store = PersistentStore::open(&dir, FlushPolicy::Manual).unwrap();
        let mut volatile_ids = Vec::new();
        for shard in 0..volatile.shard_count() {
            volatile.read_shard(shard, &mut |records| {
                volatile_ids.extend(records.iter().map(|r| r.user_id));
            });
        }
        let mut persistent_ids = Vec::new();
        for shard in 0..store.shard_count() {
            store.read_shard(shard, &mut |records| {
                persistent_ids.extend(records.iter().map(|r| r.user_id));
            });
        }
        assert_eq!(persistent_ids, volatile_ids, "shard-walk order");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_triggering_upsert_survives_restart() {
        // Regression: the append that trips the op budget used to be
        // logged *before* it was applied to the in-memory index, so the
        // compaction snapshot (collected from that index) missed it
        // while its WAL op sat in the covered generation compaction
        // deletes — silently losing exactly that record on reopen. With
        // per-lane budgets (total 16 → 1 per lane) every upsert here
        // trips its own lane's budget, so the window is exercised on
        // every shard the ids land in.
        let dir = temp_dir("trigger");
        let ct = fixture_ciphertext();
        {
            let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 16).unwrap();
            for id in 0..8 {
                store.upsert(record(&ct, id, 0));
            }
            store.sync().unwrap();
        }
        let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 16).unwrap();
        assert_eq!(
            all_ids(&store),
            (0..8).collect::<Vec<_>>(),
            "the compaction-triggering record must survive the restart"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_epoch_notes_never_regress_the_snapshot_epoch() {
        // Regression: two racing `advance_epoch_shared` calls can reach
        // `note_epoch` out of order (the SP bumps its counter outside
        // the gates). The snapshot epoch must keep the maximum, or a
        // compaction that deletes the covered WAL generation (and the
        // higher Epoch op with it) would recover a regressed epoch.
        let dir = temp_dir("epoch-race");
        let ct = fixture_ciphertext();
        {
            let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 16).unwrap();
            store.note_epoch(6);
            store.note_epoch(5); // out-of-order arrival
            store.upsert(record(&ct, 1, 6));
            store.upsert(record(&ct, 2, 6));
            store.sync().unwrap();
            store.wal.join_compactors().unwrap();
        }
        let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 16).unwrap();
        assert_eq!(store.recovered_epoch(), Some(6), "epoch must not regress");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_truncates_wal_and_preserves_state() {
        let dir = temp_dir("compact");
        let ct = fixture_ciphertext();
        {
            let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 16).unwrap();
            for round in 0..4u64 {
                for id in 0..10 {
                    store.upsert(record(&ct, id, round));
                }
            }
            store.sync().unwrap();
            store.wal.join_compactors().unwrap();
        }
        // At least one lane compacted and promoted its paged snapshot.
        let promoted = (0..MEMORY_SHARDS).any(|s| {
            dir.join(sla_persist::sharded::shard_dir_name(s))
                .join("snapshot.bin")
                .exists()
        });
        assert!(promoted, "compaction promoted in at least one lane");
        let store = PersistentStore::open_with(&dir, FlushPolicy::EveryOp, 16).unwrap();
        assert_eq!(all_ids(&store), (0..10).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_gates_are_strictly_per_shard() {
        // Structural pin for the sharding refactor: durability gates are
        // strictly per shard. A global gate would re-serialize every
        // writer the moment the persistent backend is selected.
        let source = include_str!("durable.rs");
        assert!(
            !source.contains(concat!("write", "_gate")),
            "durable.rs must not reintroduce a global write gate"
        );
        let dir = temp_dir("gates");
        let store = PersistentStore::open(&dir, FlushPolicy::Manual).unwrap();
        assert_eq!(store.gates.len(), store.shard_count(), "one gate per shard");
        assert_eq!(store.durability_lanes().len(), store.shard_count());
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writers_on_different_shards_do_not_serialize() {
        // Hold shard A's gate hostage from one thread; a writer to a
        // different shard must complete anyway. (With a global gate this
        // deadlocks the 2-second window and fails.)
        let dir = temp_dir("parallel");
        let ct = fixture_ciphertext();
        let store = PersistentStore::open(&dir, FlushPolicy::Manual).unwrap();
        // Find two users on different shards.
        let (a, b) = {
            let a = 1u64;
            let sa = shard_index(a, MEMORY_SHARDS);
            let b = (2..)
                .find(|&b| shard_index(b, MEMORY_SHARDS) != sa)
                .unwrap();
            (a, b)
        };
        let gate_a = store.gate(shard_index(a, MEMORY_SHARDS));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| store.upsert(record(&ct, b, 0)));
            // The cross-shard upsert finishes while gate A is held.
            let mut waited = 0;
            while !handle.is_finished() && waited < 2000 {
                std::thread::sleep(std::time::Duration::from_millis(1));
                waited += 1;
            }
            assert!(
                handle.is_finished(),
                "upsert to shard {} blocked behind shard {}'s gate",
                shard_index(b, MEMORY_SHARDS),
                shard_index(a, MEMORY_SHARDS)
            );
            assert_eq!(handle.join().unwrap(), UpsertOutcome::Inserted);
        });
        drop(gate_a);
        store.sync().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_surfaces_every_failed_lane() {
        // Satellite-6 pin at the store level: deferred errors in two
        // lanes surface as one aggregated error naming both shards —
        // sync on a store with one broken lane must never report clean
        // because another lane succeeded.
        let dir = temp_dir("aggregate");
        let store = PersistentStore::open(&dir, FlushPolicy::Manual).unwrap();
        store.wal.defer_error(
            2,
            PersistError::io(
                "fsync wal",
                dir.join("shard.002/wal.000001"),
                std::io::Error::other("disk gone"),
            ),
        );
        store.wal.defer_error(
            11,
            PersistError::io(
                "fsync wal",
                dir.join("shard.011/wal.000001"),
                std::io::Error::other("disk gone too"),
            ),
        );
        match store.sync() {
            Err(SlaError::Storage { detail }) => {
                assert!(
                    detail.contains("[shard 2]") && detail.contains("[shard 11]"),
                    "both failed lanes must be reported: {detail}"
                );
            }
            other => panic!("expected aggregated storage error, got {other:?}"),
        }
        // Slots drained; next sync is clean.
        store.sync().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
