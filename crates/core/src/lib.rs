//! # sla-core
//!
//! The end-to-end **secure location-based alert protocol** of the paper
//! (Fig. 1/Fig. 3), assembled from the substrate crates:
//!
//! * Mobile users map their position to a grid cell, look up the cell's
//!   index in the public codebook, and HVE-encrypt it for the Service
//!   Provider ([`MobileUser`]).
//! * The Trusted Authority holds the HVE secret key and the coding tree;
//!   on an alert it runs deterministic minimization and issues search
//!   tokens ([`TrustedAuthority`]).
//! * The Service Provider stores ciphertexts and evaluates every token
//!   against every ciphertext, learning only the match outcome
//!   ([`ServiceProvider`]).
//!
//! [`AlertSystem`] wires the three parties together over a shared bilinear
//! group engine — built through the fallible [`SystemBuilder`], with a
//! pluggable [`SubscriptionStore`] and an upsert/unsubscribe/TTL
//! subscription lifecycle — and [`metrics`] provides the *analytic*
//! pairing-cost evaluation used by the figure experiments (the paper
//! reports pairing counts; the test-suite proves the analytic counts
//! equal the live engine's counters).
//!
//! No `panic!`/`assert!` is reachable through the public service API on
//! user-supplied input: every such path returns a typed [`SlaError`].
//!
//! ## Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use sla_core::{StoreBackend, SystemBuilder};
//! use sla_encoding::EncoderKind;
//! use sla_grid::{Grid, ProbabilityMap};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let grid = Grid::new(sla_grid::BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 2);
//! let probs = ProbabilityMap::new(vec![0.4, 0.1, 0.3, 0.2]);
//! let mut system = SystemBuilder::new(grid)
//!     .encoder(EncoderKind::Huffman)
//!     .group_bits(48)
//!     .store(StoreBackend::Sharded { shards: 2 })
//!     .build(&probs, &mut rng)
//!     .expect("valid configuration");
//!
//! system.subscribe_cell(7, 0, &mut rng).unwrap(); // user 7 in cell 0
//! system.subscribe_cell(9, 3, &mut rng).unwrap(); // user 9 in cell 3
//! system.subscribe_cell(9, 1, &mut rng).unwrap(); // user 9 moved
//!
//! let outcome = system.issue_alert(&[0, 1], &mut rng).unwrap();
//! assert_eq!(outcome.notified, vec![7, 9]); // both now inside
//! assert_eq!(outcome.pairings_used, outcome.analytic_pairings);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod durable;
mod entities;
mod error;
pub mod metrics;
mod store;
mod system;
mod tracker;

pub use convert::{codeword_to_pattern, index_to_attribute};
pub use durable::PersistentStore;
pub use entities::{MobileUser, ServiceProvider, ServiceStats, Subscription, TrustedAuthority};
pub use error::{SlaError, SlaResult, MAX_GROUP_BITS, MIN_GROUP_BITS};
pub use store::{
    ConcurrentShardedStore, ConcurrentSubscriptionStore, DurabilityLaneStats, ShardedStore,
    StoreBackend, StoreStats, StoredSubscription, SubscriptionStore, UpsertOutcome, VecStore,
};
pub use system::{AlertOutcome, AlertSystem, SystemBuilder};
pub use tracker::{TokenRegenStats, TrackedAlertOutcome, ZoneTracker};

// The flush policy is part of `StoreBackend::Persistent`'s surface.
pub use sla_persist::FlushPolicy;
