//! [`SlaError`]: the workspace-wide error taxonomy of the service layer.
//!
//! Every fallible entry point of the public service API — system
//! construction, the subscription lifecycle, and alert issuance — returns
//! a typed [`SlaError`] instead of panicking. Errors raised by the
//! substrate crates (`sla-grid`, `sla-encoding`, `sla-hve`) convert into
//! the matching service-level variant via `From`, so `?` composes across
//! the whole stack.

use sla_encoding::EncodingError;
use sla_grid::GridError;
use sla_hve::HveError;
use sla_persist::PersistError;
use std::fmt;

/// `Result` alias over [`SlaError`] used throughout the service API.
pub type SlaResult<T> = Result<T, SlaError>;

/// Why a service-layer operation could not be performed.
///
/// (Not `Copy`: the durable-store variants carry rendered context
/// strings — `PersistError` wraps `std::io::Error`, which is neither
/// `Clone` nor `PartialEq`, so the service layer keeps the display form.)
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SlaError {
    /// A cell index outside the configured grid.
    CellOutOfRange {
        /// The offending cell.
        cell: usize,
        /// Number of cells the grid has.
        n_cells: usize,
    },
    /// The probability map does not cover the grid.
    ProbabilityMapMismatch {
        /// Cells in the supplied map.
        map_cells: usize,
        /// Cells in the grid.
        grid_cells: usize,
    },
    /// A likelihood score was negative, non-finite, or the whole surface
    /// was zero/empty.
    InvalidLikelihoods(GridError),
    /// The grid or bounding box itself was degenerate.
    InvalidGrid(GridError),
    /// The codebook could not be built from the supplied surface.
    InvalidCodebook(EncodingError),
    /// An HVE-layer error with no dedicated service-level variant
    /// (preserved verbatim rather than approximated).
    Hve(HveError),
    /// `group_bits` outside the simulation's supported range.
    InvalidGroupBits {
        /// The requested per-prime bit length.
        bits: usize,
    },
    /// A sharded store with zero shards.
    ZeroShardCount,
    /// A shared-reference (`&self`) mutation on a store backend that
    /// only supports exclusive (`&mut self`) access; pick
    /// `StoreBackend::ConcurrentSharded` to mutate during matching.
    StoreNotConcurrent,
    /// An explicit batch chunk size of zero.
    ZeroChunkSize,
    /// A token/ciphertext/key width that does not match the system's
    /// HVE width.
    WidthMismatch {
        /// The width this system operates at.
        expected: usize,
        /// The width of the offending input.
        actual: usize,
    },
    /// A user id outside the HVE message domain (ids double as encrypted
    /// payloads, so they must fit in `2^MESSAGE_DOMAIN_BITS`).
    MessageOutOfDomain {
        /// The offending user id.
        id: u64,
    },
    /// An operation on a user the store does not hold.
    UnknownUser {
        /// The offending user id.
        user_id: u64,
    },
    /// A geographic point outside the grid's bounding box.
    PointOutsideGrid {
        /// Latitude of the point.
        lat: f64,
        /// Longitude of the point.
        lon: f64,
    },
    /// A durable-store I/O failure (open, append, fsync, snapshot
    /// promotion). The store may work again once the environment
    /// recovers; the in-memory index is unaffected.
    Storage {
        /// The rendered `sla_persist::PersistError::Io`.
        detail: String,
    },
    /// Durable-store bytes failed structural or CRC validation somewhere
    /// a torn tail is not tolerated (a snapshot, or a mid-file frame).
    /// Recovery refuses to guess; operator intervention is required.
    Corrupt {
        /// The rendered `sla_persist::PersistError::Corrupt`.
        detail: String,
    },
    /// A transport-level I/O failure (socket read/write, bind, accept).
    /// Raised by the service plane (`sla-server`) so network failures
    /// surface through the same taxonomy as every other service error.
    /// (Carries the rendered `std::io::Error` — like [`SlaError::Storage`],
    /// the inner error is neither `Clone` nor `PartialEq`.)
    Io {
        /// The rendered `std::io::Error`.
        detail: String,
    },
    /// Bytes arrived over the wire that do not form a valid protocol
    /// frame or payload (torn frame, CRC mismatch, oversized frame,
    /// unknown tag, trailing bytes). The peer is misbehaving or speaking
    /// a different protocol version; the connection cannot be resynced.
    Protocol {
        /// What failed to parse.
        detail: String,
    },
}

impl fmt::Display for SlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlaError::CellOutOfRange { cell, n_cells } => {
                write!(f, "cell {cell} out of range (grid has {n_cells} cells)")
            }
            SlaError::ProbabilityMapMismatch {
                map_cells,
                grid_cells,
            } => write!(
                f,
                "probability map covers {map_cells} cells but the grid has {grid_cells}"
            ),
            SlaError::InvalidLikelihoods(e) | SlaError::InvalidGrid(e) => e.fmt(f),
            SlaError::InvalidCodebook(e) => e.fmt(f),
            SlaError::Hve(e) => e.fmt(f),
            SlaError::InvalidGroupBits { bits } => write!(
                f,
                "group_bits {bits} outside the supported range [{MIN_GROUP_BITS}, {MAX_GROUP_BITS}]"
            ),
            SlaError::ZeroShardCount => write!(f, "sharded store needs at least one shard"),
            SlaError::StoreNotConcurrent => write!(
                f,
                "store backend does not support shared-reference mutation \
                 (use StoreBackend::ConcurrentSharded)"
            ),
            SlaError::ZeroChunkSize => write!(f, "batch chunk size must be positive"),
            SlaError::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "width mismatch: system width {expected}, input width {actual}"
                )
            }
            SlaError::MessageOutOfDomain { id } => {
                write!(f, "user id {id} outside the HVE message domain")
            }
            SlaError::UnknownUser { user_id } => {
                write!(f, "user {user_id} has no stored subscription")
            }
            SlaError::PointOutsideGrid { lat, lon } => {
                write!(f, "point ({lat}, {lon}) lies outside the grid")
            }
            SlaError::Storage { detail } => write!(f, "durable store I/O failure: {detail}"),
            SlaError::Corrupt { detail } => write!(f, "durable store corruption: {detail}"),
            SlaError::Io { detail } => write!(f, "transport I/O failure: {detail}"),
            SlaError::Protocol { detail } => write!(f, "wire protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for SlaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SlaError::InvalidLikelihoods(e) | SlaError::InvalidGrid(e) => Some(e),
            SlaError::InvalidCodebook(e) => Some(e),
            SlaError::Hve(e) => Some(e),
            _ => None,
        }
    }
}

/// Smallest per-prime bit length the simulated group accepts through the
/// builder (below this the message domain no longer fits the order).
pub const MIN_GROUP_BITS: usize = 24;

/// Largest per-prime bit length the builder accepts (prime generation
/// cost grows steeply beyond this and the simulation gains nothing).
pub const MAX_GROUP_BITS: usize = 256;

impl From<GridError> for SlaError {
    fn from(e: GridError) -> Self {
        match e {
            GridError::EmptyProbabilityMap
            | GridError::InvalidLikelihood { .. }
            | GridError::AllZeroLikelihoods => SlaError::InvalidLikelihoods(e),
            GridError::DegenerateBoundingBox { .. } | GridError::ZeroGridDimension { .. } => {
                SlaError::InvalidGrid(e)
            }
            _ => SlaError::InvalidGrid(e),
        }
    }
}

impl From<EncodingError> for SlaError {
    fn from(e: EncodingError) -> Self {
        match e {
            EncodingError::CellOutOfRange { cell, n_cells } => {
                SlaError::CellOutOfRange { cell, n_cells }
            }
            _ => SlaError::InvalidCodebook(e),
        }
    }
}

impl From<PersistError> for SlaError {
    fn from(e: PersistError) -> Self {
        // A lane aggregate maps by its worst content: any corrupt lane
        // makes the whole error `Corrupt` (the directory needs operator
        // attention), otherwise it is an environmental `Storage`
        // failure. The Display form already names every failed lane.
        if e.is_corrupt() {
            SlaError::Corrupt {
                detail: e.to_string(),
            }
        } else {
            SlaError::Storage {
                detail: e.to_string(),
            }
        }
    }
}

impl From<std::io::Error> for SlaError {
    fn from(e: std::io::Error) -> Self {
        SlaError::Io {
            detail: e.to_string(),
        }
    }
}

impl From<HveError> for SlaError {
    fn from(e: HveError) -> Self {
        match e {
            HveError::WidthMismatch { expected, actual } => {
                SlaError::WidthMismatch { expected, actual }
            }
            HveError::MessageOutOfDomain { id } => SlaError::MessageOutOfDomain { id },
            // ZeroWidth (and any future HveError variant) passes through
            // verbatim rather than being approximated by a width error.
            other => SlaError::Hve(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(SlaError, &str)> = vec![
            (
                SlaError::CellOutOfRange {
                    cell: 9,
                    n_cells: 4,
                },
                "cell 9 out of range",
            ),
            (
                SlaError::ProbabilityMapMismatch {
                    map_cells: 3,
                    grid_cells: 4,
                },
                "covers 3 cells",
            ),
            (SlaError::ZeroChunkSize, "chunk size"),
            (
                SlaError::WidthMismatch {
                    expected: 5,
                    actual: 3,
                },
                "width mismatch",
            ),
            (SlaError::UnknownUser { user_id: 7 }, "user 7"),
            (
                SlaError::Storage {
                    detail: "fsync wal /x/wal.000001: disk full".into(),
                },
                "durable store I/O failure",
            ),
            (
                SlaError::Corrupt {
                    detail: "corrupt frame in /x/snapshot.bin at offset 9".into(),
                },
                "durable store corruption",
            ),
            (
                SlaError::Io {
                    detail: "connection reset by peer".into(),
                },
                "transport I/O failure",
            ),
            (
                SlaError::Protocol {
                    detail: "crc mismatch in request frame".into(),
                },
                "wire protocol violation",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err:?} -> {err} missing {needle:?}"
            );
        }
    }

    #[test]
    fn substrate_errors_convert() {
        assert_eq!(
            SlaError::from(EncodingError::CellOutOfRange {
                cell: 8,
                n_cells: 5
            }),
            SlaError::CellOutOfRange {
                cell: 8,
                n_cells: 5
            }
        );
        assert_eq!(
            SlaError::from(HveError::MessageOutOfDomain { id: 1 << 40 }),
            SlaError::MessageOutOfDomain { id: 1 << 40 }
        );
        assert!(matches!(
            SlaError::from(GridError::AllZeroLikelihoods),
            SlaError::InvalidLikelihoods(_)
        ));
        // Durable-store errors keep their family: Io -> Storage (the
        // environment may recover), Corrupt -> Corrupt (it will not).
        assert!(matches!(
            SlaError::from(PersistError::io(
                "fsync wal",
                "/x/wal.000001",
                std::io::Error::other("disk full"),
            )),
            SlaError::Storage { .. }
        ));
        assert!(matches!(
            SlaError::from(PersistError::corrupt("/x/snapshot.bin", 9, "crc mismatch")),
            SlaError::Corrupt { .. }
        ));
        // Lane aggregates map by their worst content: all-Io stays
        // Storage, any corrupt lane escalates to Corrupt; either way the
        // detail names every failed lane.
        let all_io = PersistError::from_lanes(vec![
            (
                0,
                PersistError::io(
                    "fsync wal",
                    "/x/shard.000/wal.000001",
                    std::io::Error::other("a"),
                ),
            ),
            (
                3,
                PersistError::io(
                    "fsync wal",
                    "/x/shard.003/wal.000002",
                    std::io::Error::other("b"),
                ),
            ),
        ])
        .unwrap();
        match SlaError::from(all_io) {
            SlaError::Storage { detail } => {
                assert!(
                    detail.contains("[shard 0]") && detail.contains("[shard 3]"),
                    "{detail}"
                )
            }
            other => panic!("{other:?}"),
        }
        let one_corrupt = PersistError::from_lanes(vec![
            (
                1,
                PersistError::io(
                    "fsync wal",
                    "/x/shard.001/wal.000001",
                    std::io::Error::other("a"),
                ),
            ),
            (
                2,
                PersistError::corrupt("/x/shard.002/snapshot.bin", 0, "page 3 checksum"),
            ),
        ])
        .unwrap();
        assert!(matches!(
            SlaError::from(one_corrupt),
            SlaError::Corrupt { .. }
        ));
        // Transport errors keep their rendered detail so operators can
        // tell a refused bind from a mid-stream reset.
        match SlaError::from(std::io::Error::other("address in use")) {
            SlaError::Io { detail } => assert!(detail.contains("address in use")),
            other => panic!("{other:?}"),
        }
    }
}
