//! The three parties of the system model (§2.2).

use crate::convert::{codeword_to_pattern, index_to_attribute};
use crate::error::{SlaError, SlaResult};
use crate::store::{
    ConcurrentSubscriptionStore, DurabilityLaneStats, StoreBackend, StoreHandle, StoreStats,
    StoredSubscription, UpsertOutcome,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sla_encoding::CellCodebook;
use sla_hve::{
    Ciphertext, HveScheme, PreparedPublicKey, PreparedSecretKey, PublicKey, RegenStats, SecretKey,
    Token, TokenCache,
};
use sla_pairing::BilinearGroup;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The Trusted Authority: holds the HVE secret key and the codebook's
/// coding tree; issues minimized search tokens for alert zones. "The TA
/// does not have access to user locations" — it only ever sees cell sets
/// supplied by the alert source.
///
/// After [`TrustedAuthority::prepare`] the TA also holds fixed-base tables
/// over its key material, so every token of every alert reuses the same
/// per-base precomputation.
#[derive(Debug)]
pub struct TrustedAuthority {
    /// The secret key, in exactly one state: plain after construction,
    /// table-backed after [`Self::prepare`] (the prepared form embeds the
    /// key, so nothing is stored twice).
    key: TaKey,
    codebook: CellCodebook,
}

/// The TA's key-material state.
#[derive(Debug)]
enum TaKey {
    Plain(SecretKey),
    Prepared(Box<PreparedSecretKey>),
}

impl TaKey {
    fn secret_key(&self) -> &SecretKey {
        match self {
            TaKey::Plain(sk) => sk,
            TaKey::Prepared(psk) => psk.secret_key(),
        }
    }
}

impl TrustedAuthority {
    /// Creates the TA from setup artifacts;
    /// `Err(SlaError::WidthMismatch)` when the key and codebook widths
    /// disagree.
    pub fn new(sk: SecretKey, codebook: CellCodebook) -> SlaResult<Self> {
        if sk.width() != codebook.width_bits() {
            return Err(SlaError::WidthMismatch {
                expected: codebook.width_bits(),
                actual: sk.width(),
            });
        }
        Ok(TrustedAuthority {
            key: TaKey::Plain(sk),
            codebook,
        })
    }

    /// Builds the secret key's fixed-base tables; subsequent
    /// [`Self::issue_tokens`] calls route through them (same operations
    /// and outputs, lower wall-clock).
    pub fn prepare<G: BilinearGroup>(&mut self, scheme: &HveScheme<'_, G>) {
        self.key = TaKey::Prepared(Box::new(scheme.prepare_secret_key(self.key.secret_key())));
    }

    /// The codebook (public: users need the indexes).
    pub fn codebook(&self) -> &CellCodebook {
        &self.codebook
    }

    /// Issues the minimized token set for an alert zone (Fig. 3's
    /// "minimization algorithm" + token encryption), through the prepared
    /// key tables when [`Self::prepare`] has run.
    ///
    /// With a prepared key the whole set is generated through
    /// [`HveScheme::gen_token_prepared_batch`], so the tokens'
    /// exponentiations run in lockstep through the engine's SIMD batch
    /// kernels — byte-identical to per-token generation against the same
    /// RNG, with identical operation counts.
    ///
    /// `Err(SlaError::CellOutOfRange)` on alert cells outside the grid.
    pub fn issue_tokens<G: BilinearGroup, R: Rng>(
        &self,
        scheme: &HveScheme<'_, G>,
        alert_cells: &[usize],
        rng: &mut R,
    ) -> SlaResult<Vec<Token>> {
        let patterns: Vec<_> = self
            .codebook
            .try_tokens_for(alert_cells)?
            .iter()
            .map(codeword_to_pattern)
            .collect();
        match &self.key {
            TaKey::Prepared(psk) => {
                let refs: Vec<_> = patterns.iter().collect();
                Ok(scheme.gen_token_prepared_batch(psk, &refs, rng))
            }
            TaKey::Plain(sk) => Ok(patterns
                .iter()
                .map(|pattern| scheme.gen_token(sk, pattern, rng))
                .collect()),
        }
    }

    /// Incremental variant of [`Self::issue_tokens`] for dynamic alert
    /// zones: minimizes the zone to its pattern set, then serves it from
    /// `cache` — only patterns that entered since the previous epoch are
    /// freshly generated (batched through
    /// [`HveScheme::gen_token_prepared_batch`] on a prepared key), and
    /// patterns that exited are evicted. Tokens for unchanged patterns
    /// are reused, which leaves notified sets and pairing counts
    /// identical to a full regeneration (matching depends only on the
    /// pattern, never on token randomness).
    ///
    /// `Err(SlaError::CellOutOfRange)` on alert cells outside the grid.
    pub fn issue_tokens_cached<G: BilinearGroup, R: Rng>(
        &self,
        scheme: &HveScheme<'_, G>,
        cache: &mut TokenCache,
        alert_cells: &[usize],
        rng: &mut R,
    ) -> SlaResult<(Vec<Token>, RegenStats)> {
        let patterns: Vec<_> = self
            .codebook
            .try_tokens_for(alert_cells)?
            .iter()
            .map(codeword_to_pattern)
            .collect();
        Ok(match &self.key {
            TaKey::Prepared(psk) => scheme.regen_tokens_prepared(psk, cache, &patterns, rng),
            TaKey::Plain(sk) => scheme.regen_tokens(sk, cache, &patterns, rng),
        })
    }

    /// Analytic pairing cost of an alert against `n_ciphertexts`
    /// ciphertexts — what the SP *will* spend evaluating the tokens.
    /// `Err(SlaError::CellOutOfRange)` on alert cells outside the grid.
    pub fn analytic_pairing_cost(
        &self,
        alert_cells: &[usize],
        n_ciphertexts: u64,
    ) -> SlaResult<u64> {
        let tokens = self.codebook.try_tokens_for(alert_cells)?;
        Ok(sla_encoding::minimize::pairing_cost(&tokens, n_ciphertexts))
    }
}

/// A mobile user: knows its own cell, encrypts the cell's index under the
/// public key, and submits the ciphertext.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MobileUser {
    /// Application-level identifier (also the HVE message payload, so a
    /// successful match reveals *whom* to notify and nothing else).
    pub id: u64,
    /// Current grid cell.
    pub cell: usize,
}

impl MobileUser {
    /// Creates a user at a cell.
    pub fn new(id: u64, cell: usize) -> Self {
        MobileUser { id, cell }
    }

    /// Encrypts the user's location update (Fig. 1: users A and B encrypt
    /// their indexes with PK). Errors on cells outside the codebook and
    /// on ids outside the HVE message domain.
    pub fn encrypt_update<G: BilinearGroup, R: Rng>(
        &self,
        scheme: &HveScheme<'_, G>,
        pk: &PublicKey,
        codebook: &CellCodebook,
        rng: &mut R,
    ) -> SlaResult<Ciphertext> {
        let (attr, msg) = self.update_parts(scheme, codebook)?;
        Ok(scheme.encrypt(pk, &attr, &msg, rng))
    }

    /// [`Self::encrypt_update`] through a prepared public key — identical
    /// output, with the fixed-base tables amortized across all users
    /// encrypting under the same key.
    pub fn encrypt_update_prepared<G: BilinearGroup, R: Rng>(
        &self,
        scheme: &HveScheme<'_, G>,
        ppk: &PreparedPublicKey,
        codebook: &CellCodebook,
        rng: &mut R,
    ) -> SlaResult<Ciphertext> {
        let (attr, msg) = self.update_parts(scheme, codebook)?;
        Ok(scheme.encrypt_prepared(ppk, &attr, &msg, rng))
    }

    /// Validated attribute/message pair shared by both encrypt paths.
    fn update_parts<G: BilinearGroup>(
        &self,
        scheme: &HveScheme<'_, G>,
        codebook: &CellCodebook,
    ) -> SlaResult<(sla_hve::AttributeVector, sla_pairing::GtElem)> {
        if self.cell >= codebook.n_cells() {
            return Err(SlaError::CellOutOfRange {
                cell: self.cell,
                n_cells: codebook.n_cells(),
            });
        }
        let attr = index_to_attribute(codebook.index_of(self.cell));
        let msg = scheme.try_encode_message(self.id)?;
        Ok((attr, msg))
    }
}

/// A location update as submitted to the SP: the user's id (routing
/// metadata) and the opaque ciphertext.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    /// Routing identifier (who to push the notification to).
    pub user_id: u64,
    /// The encrypted location update.
    pub ciphertext: Ciphertext,
}

/// One cheap serving-plane snapshot of a [`ServiceProvider`]: the store
/// layout and lifecycle counters plus the epoch a durable backend
/// recovered at open. Assembled entirely from atomics through
/// [`ServiceProvider::service_stats`] (`&self`, no write lock), so a
/// `stats` RPC never stalls matching or churn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Store layout and lifecycle counters.
    pub store: StoreStats,
    /// The epoch recovered from a durable directory at open (`None` on
    /// volatile backends and fresh directories).
    pub recovered_epoch: Option<u64>,
    /// Per-lane durability stats (WAL generation and ops since the last
    /// snapshot for every durability lane, in shard order). Empty on
    /// volatile backends. Read from per-lane atomics — never a lane
    /// lock — so the snapshot stays wait-free.
    pub durability_lanes: Vec<DurabilityLaneStats>,
    /// Lifetime count of alert tokens freshly generated by the tracked
    /// (incremental) alert path — cache misses; cache hits cost no group
    /// operations and are not counted here.
    pub tokens_regenerated: u64,
    /// Lifetime count of cells that entered a tracked alert zone
    /// relative to the previous epoch of the same tracker.
    pub cells_entered: u64,
    /// Lifetime count of cells that exited a tracked alert zone
    /// relative to the previous epoch of the same tracker.
    pub cells_exited: u64,
}

/// The Service Provider: stores encrypted updates, evaluates tokens, and
/// notifies matched users. Learns only "user u is inside the alert zone" /
/// "user u is not" — nothing else (§6).
///
/// ## Lifecycle
///
/// The store holds **one ciphertext per user**: [`Self::upsert`] replaces
/// on re-subscription (a user who moves stops matching alerts on the old
/// cell), [`Self::unsubscribe`] removes, and [`Self::advance_epoch`]
/// evicts subscriptions that have not been refreshed within the
/// configured TTL. [`Self::stats`] snapshots the store and its lifetime
/// counters.
///
/// ## Matching
///
/// The stored ciphertexts (and the tokens handed in per alert) keep their
/// group elements in the engine's Montgomery residue domain, and each
/// record carries its expected payload, so matching is a pure
/// residue-domain comparison — zero canonical conversions per (token,
/// ciphertext) pair (see `HveScheme::match_token`).
///
/// ## Concurrency
///
/// All matching paths take `&self`. With the
/// `StoreBackend::ConcurrentSharded` backend, [`Self::upsert_shared`] and
/// [`Self::unsubscribe_shared`] also take `&self`, so writer threads can
/// churn the store **while** a batch match runs: matching holds one
/// shard's read lock at a time, mutation one shard's write lock — never
/// more than one lock per operation, so no interleaving can deadlock (see
/// the [`ConcurrentSubscriptionStore`] consistency model for what the
/// notified set means under concurrent churn). On the exclusive backends
/// the shared entry points return [`SlaError::StoreNotConcurrent`].
#[derive(Debug)]
pub struct ServiceProvider {
    store: StoreHandle,
    /// The service epoch — atomic so [`Self::advance_epoch_shared`] can
    /// advance it through `&self` while matching and churn are running.
    epoch: AtomicU64,
    ttl_epochs: Option<u64>,
    /// HVE width pinned by the first accepted ciphertext; every later
    /// upsert and every token must agree. A `OnceLock` so concurrent
    /// first upserts race safely (one pins, the others validate).
    width: OnceLock<usize>,
    inserted: AtomicU64,
    replaced: AtomicU64,
    unsubscribed: AtomicU64,
    evicted: AtomicU64,
    tokens_regenerated: AtomicU64,
    cells_entered: AtomicU64,
    cells_exited: AtomicU64,
}

impl Default for ServiceProvider {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceProvider {
    /// An SP with an empty contiguous store and no TTL eviction.
    pub fn new() -> Self {
        Self::with_backend(StoreBackend::Contiguous, None)
            .expect("contiguous backend is always constructible")
    }

    /// An SP over the chosen store backend;
    /// `ttl_epochs = Some(t)` evicts subscriptions not refreshed within
    /// `t` epochs. `Err(SlaError::ZeroShardCount)` for a zero-shard
    /// sharded backend; `Err(SlaError::Storage)` /
    /// `Err(SlaError::Corrupt)` when the persistent backend cannot open
    /// or recover its directory.
    pub fn with_backend(backend: StoreBackend, ttl_epochs: Option<u64>) -> SlaResult<Self> {
        let store = backend.build()?;
        // A durable backend resumes at its recovered epoch, so TTL
        // arithmetic and new upsert stamps continue where the previous
        // process stopped; volatile backends start at 0.
        let epoch = store.recovered_epoch().unwrap_or(0);
        Ok(ServiceProvider {
            store,
            epoch: AtomicU64::new(epoch),
            ttl_epochs,
            width: OnceLock::new(),
            inserted: AtomicU64::new(0),
            replaced: AtomicU64::new(0),
            unsubscribed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            tokens_regenerated: AtomicU64::new(0),
            cells_entered: AtomicU64::new(0),
            cells_exited: AtomicU64::new(0),
        })
    }

    /// Records one tracked-alert regeneration pass (atomics through
    /// `&self`, like the churn counters): `generated` fresh tokens and
    /// the zone's cell delta against the tracker's previous epoch.
    pub(crate) fn note_regen(&self, generated: u64, entered: u64, exited: u64) {
        self.tokens_regenerated
            .fetch_add(generated, Ordering::Relaxed);
        self.cells_entered.fetch_add(entered, Ordering::Relaxed);
        self.cells_exited.fetch_add(exited, Ordering::Relaxed);
    }

    /// Number of stored ciphertexts (one per live user). Exact when
    /// quiescent; may transiently lag under concurrent churn on the
    /// concurrent backend.
    pub fn n_subscriptions(&self) -> usize {
        self.store.len()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// `true` iff the store backend supports shared-reference mutation
    /// ([`Self::upsert_shared`] / [`Self::unsubscribe_shared`]).
    pub fn supports_shared_mutation(&self) -> bool {
        matches!(self.store, StoreHandle::Concurrent(_))
    }

    /// Snapshot of the store layout and lifecycle counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            backend: self.store.backend_name(),
            shards: self.store.shard_count(),
            subscriptions: self.store.len(),
            epoch: self.epoch(),
            ttl_epochs: self.ttl_epochs,
            inserted: self.inserted.load(Ordering::Relaxed),
            replaced: self.replaced.load(Ordering::Relaxed),
            unsubscribed: self.unsubscribed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    /// The epoch a durable backend recovered from its directory at open,
    /// `None` on volatile backends and on fresh directories.
    pub fn recovered_epoch(&self) -> Option<u64> {
        self.store.recovered_epoch()
    }

    /// One-call serving snapshot: [`Self::stats`] plus the recovered
    /// epoch. Everything here reads atomics (store length included) —
    /// **no shard write lock is taken**, so a `stats` RPC can be answered
    /// while matching and churn are running without perturbing either.
    pub fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            store: self.stats(),
            recovered_epoch: self.recovered_epoch(),
            durability_lanes: self.store.durability_lanes(),
            tokens_regenerated: self.tokens_regenerated.load(Ordering::Relaxed),
            cells_entered: self.cells_entered.load(Ordering::Relaxed),
            cells_exited: self.cells_exited.load(Ordering::Relaxed),
        }
    }

    /// Every stored `(user_id, epoch)` pair, sorted — a cheap
    /// content fingerprint for diagnostics and the cross-backend
    /// equivalence tests (ciphertexts are deliberately not exposed).
    pub fn subscription_epochs(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.store.len());
        match &self.store {
            StoreHandle::Exclusive(store) => {
                for shard in store.shards() {
                    out.extend(shard.iter().map(|r| (r.user_id, r.epoch)));
                }
            }
            StoreHandle::Concurrent(store) => {
                for shard in 0..store.shard_count() {
                    store.read_shard(shard, &mut |records| {
                        out.extend(records.iter().map(|r| (r.user_id, r.epoch)));
                    });
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Validation shared by both upsert paths: width agreement with the
    /// scheme and with previously pinned material, then assembly of the
    /// stored record (expected payload + epoch stamp).
    fn validated_record<G: BilinearGroup>(
        &self,
        scheme: &HveScheme<'_, G>,
        subscription: Subscription,
    ) -> SlaResult<StoredSubscription> {
        let ct_width = subscription.ciphertext.width();
        if ct_width != scheme.width() {
            return Err(SlaError::WidthMismatch {
                expected: scheme.width(),
                actual: ct_width,
            });
        }
        if let Some(&width) = self.width.get() {
            if width != ct_width {
                return Err(SlaError::WidthMismatch {
                    expected: width,
                    actual: ct_width,
                });
            }
        }
        let expected = scheme.try_encode_message(subscription.user_id)?;
        // Pin only after the last fallible step, so a *rejected* upsert
        // (e.g. MessageOutOfDomain) leaves the width unpinned — exactly
        // the pre-concurrency behavior. Concurrent first upserts race
        // safely: one initializes, the others validate against it.
        let pinned = *self.width.get_or_init(|| ct_width);
        if pinned != ct_width {
            return Err(SlaError::WidthMismatch {
                expected: pinned,
                actual: ct_width,
            });
        }
        Ok(StoredSubscription {
            user_id: subscription.user_id,
            ciphertext: subscription.ciphertext,
            expected,
            epoch: self.epoch(),
        })
    }

    /// Bumps the lifetime counter matching an upsert outcome.
    fn note_upsert(&self, outcome: UpsertOutcome) {
        match outcome {
            UpsertOutcome::Inserted => self.inserted.fetch_add(1, Ordering::Relaxed),
            UpsertOutcome::Replaced => self.replaced.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// The concurrent store, or `Err(SlaError::StoreNotConcurrent)` on an
    /// exclusive backend.
    fn concurrent_store(&self) -> SlaResult<&dyn ConcurrentSubscriptionStore> {
        match &self.store {
            StoreHandle::Concurrent(store) => Ok(store.as_ref()),
            StoreHandle::Exclusive(_) => Err(SlaError::StoreNotConcurrent),
        }
    }

    /// Accepts (or refreshes) a user's encrypted location update: a
    /// re-subscribing user's previous ciphertext is **replaced**, so the
    /// old location stops matching alerts. The record is stamped with the
    /// current epoch and carries the precomputed expected payload for
    /// residue-domain matching.
    ///
    /// Errors: `WidthMismatch` when the ciphertext disagrees with the
    /// scheme or with previously stored material; `MessageOutOfDomain`
    /// when the user id cannot serve as an HVE payload.
    pub fn upsert<G: BilinearGroup>(
        &mut self,
        scheme: &HveScheme<'_, G>,
        subscription: Subscription,
    ) -> SlaResult<UpsertOutcome> {
        let record = self.validated_record(scheme, subscription)?;
        let outcome = self.store.upsert(record);
        self.note_upsert(outcome);
        Ok(outcome)
    }

    /// [`Self::upsert`] through a shared reference — the entry point
    /// writer threads use while a batch match is running. Takes only the
    /// target shard's write lock.
    ///
    /// `Err(SlaError::StoreNotConcurrent)` unless the SP was built over
    /// `StoreBackend::ConcurrentSharded`.
    pub fn upsert_shared<G: BilinearGroup>(
        &self,
        scheme: &HveScheme<'_, G>,
        subscription: Subscription,
    ) -> SlaResult<UpsertOutcome> {
        let store = self.concurrent_store()?;
        let record = self.validated_record(scheme, subscription)?;
        let outcome = store.upsert(record);
        self.note_upsert(outcome);
        Ok(outcome)
    }

    /// Removes a user's subscription;
    /// `Err(SlaError::UnknownUser)` when none is stored.
    pub fn unsubscribe(&mut self, user_id: u64) -> SlaResult<()> {
        if self.store.remove(user_id) {
            self.unsubscribed.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            Err(SlaError::UnknownUser { user_id })
        }
    }

    /// [`Self::unsubscribe`] through a shared reference (see
    /// [`Self::upsert_shared`]).
    ///
    /// `Err(SlaError::StoreNotConcurrent)` on an exclusive backend,
    /// `Err(SlaError::UnknownUser)` when no subscription is stored.
    pub fn unsubscribe_shared(&self, user_id: u64) -> SlaResult<()> {
        if self.concurrent_store()?.remove(user_id) {
            self.unsubscribed.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            Err(SlaError::UnknownUser { user_id })
        }
    }

    /// The TTL retention bound for `new_epoch`, if eviction applies.
    fn ttl_min_epoch(&self, new_epoch: u64) -> Option<u64> {
        let ttl = self.ttl_epochs?;
        new_epoch.checked_sub(ttl).map(|e| e + 1)
    }

    /// Advances the service epoch and, when a TTL is configured, evicts
    /// every subscription whose last upsert is `ttl_epochs` or more
    /// epochs old (a record upserted at epoch `e` with TTL `t` is evicted
    /// when the epoch reaches `e + t` — equivalently, the
    /// `epoch >= min_epoch` retain bound is the contract: a record
    /// *exactly* `ttl_epochs` old is dropped). Returns how many were
    /// evicted.
    ///
    /// A durable backend logs the advance (and any eviction), so a
    /// reopened store resumes at this epoch.
    pub fn advance_epoch(&mut self) -> usize {
        let new_epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        self.store.note_epoch(new_epoch);
        let Some(min_epoch) = self.ttl_min_epoch(new_epoch) else {
            return 0;
        };
        let evicted = self.store.evict_before(min_epoch);
        self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// [`Self::advance_epoch`] through a shared reference — the epoch
    /// and stats plane is atomic, so eviction can overlap subscription
    /// churn and matching on a concurrent-capable backend (eviction
    /// locks one shard at a time, exactly like a writer).
    ///
    /// `Err(SlaError::StoreNotConcurrent)` on the exclusive backends.
    pub fn advance_epoch_shared(&self) -> SlaResult<usize> {
        let store = self.concurrent_store()?;
        let new_epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        store.note_epoch(new_epoch);
        let Some(min_epoch) = self.ttl_min_epoch(new_epoch) else {
            return Ok(0);
        };
        let evicted = store.evict_before(min_epoch);
        self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        Ok(evicted)
    }

    /// Flushes a durable store backend to stable storage, surfacing any
    /// deferred write error (`SlaError::Storage` / `SlaError::Corrupt`).
    /// On volatile backends this trivially succeeds — subscriptions are
    /// exactly as durable as the process.
    pub fn sync(&self) -> SlaResult<()> {
        self.store.sync()
    }

    /// Validates an alert's token set against the system width before any
    /// pairing is evaluated, so the matching loops below cannot panic on
    /// user-supplied material.
    fn validate_tokens<G: BilinearGroup>(
        &self,
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
    ) -> SlaResult<()> {
        if let Some(&width) = self.width.get() {
            if width != scheme.width() {
                return Err(SlaError::WidthMismatch {
                    expected: width,
                    actual: scheme.width(),
                });
            }
        }
        for token in tokens {
            if token.pattern().len() != scheme.width() {
                return Err(SlaError::WidthMismatch {
                    expected: scheme.width(),
                    actual: token.pattern().len(),
                });
            }
        }
        Ok(())
    }

    /// Evaluates the token set with an **early exit**: a subscription
    /// stops evaluating tokens after its first match. This is the
    /// latency-optimal production call — its pairing count depends on
    /// *which* users match, so it does not reproduce the paper's
    /// worst-case cost model; use [`Self::match_alert_exhaustive`] (or
    /// the batch path) when live counters must equal the analytic
    /// prediction. Both paths decide each (token, ciphertext) pair with
    /// the same residue-domain primitive, so the notified set is
    /// identical.
    pub fn match_alert<G: BilinearGroup>(
        &self,
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
    ) -> SlaResult<Vec<u64>> {
        self.validate_tokens(scheme, tokens)?;
        let mut notified = Vec::new();
        let mut early_exit_chunk = |chunk: &[StoredSubscription]| {
            for sub in chunk {
                for token in tokens {
                    if scheme.match_token(token, &sub.ciphertext, &sub.expected) {
                        notified.push(sub.user_id);
                        break; // already matched; skip remaining tokens
                    }
                }
            }
        };
        match &self.store {
            StoreHandle::Exclusive(store) => {
                for shard in store.shards() {
                    early_exit_chunk(shard);
                }
            }
            StoreHandle::Concurrent(store) => {
                for shard in 0..store.shard_count() {
                    store.read_shard(shard, &mut early_exit_chunk);
                }
            }
        }
        Ok(notified)
    }

    /// Like [`Self::match_alert`] but evaluates *every* (token,
    /// ciphertext) pair without early exit — the worst-case evaluation the
    /// paper's cost model counts (`Σ_tokens (1+2·|J|) · n_ciphertexts`).
    pub fn match_alert_exhaustive<G: BilinearGroup>(
        &self,
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
    ) -> SlaResult<Vec<u64>> {
        self.validate_tokens(scheme, tokens)?;
        let mut notified = Vec::new();
        match &self.store {
            StoreHandle::Exclusive(store) => {
                for shard in store.shards() {
                    notified.extend(Self::match_chunk_exhaustive(shard, scheme, tokens));
                }
            }
            StoreHandle::Concurrent(store) => {
                for shard in 0..store.shard_count() {
                    store.read_shard(shard, &mut |records| {
                        notified.extend(Self::match_chunk_exhaustive(records, scheme, tokens));
                    });
                }
            }
        }
        Ok(notified)
    }

    /// Exhaustive matching of one chunk of the store; the unit of work
    /// the serial and the parallel batch paths share, so their outcomes
    /// are identical by construction. Decides every pair in the residue
    /// domain — no canonical conversions.
    ///
    /// Evaluation is **token-outer / lockstep-inner**: each token sweeps
    /// the whole chunk through [`HveScheme::match_token_batch`], which
    /// drives the chunk's ciphertexts through one shared instruction
    /// stream (the engine's SIMD batch kernels), and per-subscription
    /// hits are OR-accumulated across tokens. Notified ids are still
    /// pushed in subscription order, and every (token, ciphertext) pair
    /// is still decided by the same residue-domain primitive, so the
    /// result and the pairing count are identical to the old
    /// subscription-outer loop.
    fn match_chunk_exhaustive<G: BilinearGroup>(
        chunk: &[StoredSubscription],
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
    ) -> Vec<u64> {
        let pairs: Vec<(&Ciphertext, &sla_pairing::GtElem)> = chunk
            .iter()
            .map(|sub| (&sub.ciphertext, &sub.expected))
            .collect();
        let mut hit = vec![false; chunk.len()];
        for token in tokens {
            for (h, matched) in hit.iter_mut().zip(scheme.match_token_batch(token, &pairs)) {
                *h |= matched;
            }
        }
        chunk
            .iter()
            .zip(hit)
            .filter_map(|(sub, h)| h.then_some(sub.user_id))
            .collect()
    }

    /// Default chunk size for [`Self::process_alert_batch`]: a handful of
    /// chunks per available core so stragglers rebalance — or one single
    /// chunk when only one core is available or the store is small, where
    /// the rayon shim's per-call thread spawns (scoped threads, no
    /// persistent pool — it is `forbid(unsafe_code)`) outweigh the
    /// matching work. An explicit `chunk_size` always takes the parallel
    /// machinery, which is what the equivalence tests exercise.
    pub fn default_batch_chunk_size(&self) -> usize {
        let threads = Self::match_threads();
        let len = self.store.len();
        if threads <= 1 || len < Self::PARALLEL_MIN_STORE {
            return len.max(1);
        }
        len.div_ceil(threads * 4).max(1)
    }

    #[cfg(feature = "parallel")]
    fn match_threads() -> usize {
        rayon::current_num_threads()
    }

    #[cfg(not(feature = "parallel"))]
    fn match_threads() -> usize {
        1
    }

    /// Batch variant of [`Self::match_alert_exhaustive`]: partitions every
    /// store shard into `chunk_size`-sized chunks and matches them in
    /// parallel (rayon; `parallel` feature, on by default — serial chunks
    /// otherwise).
    ///
    /// Chunk results are concatenated in shard order, so on a quiescent
    /// store the returned ids are **byte-identical** to the serial path's
    /// regardless of thread count, and the engine's atomic
    /// [`sla_pairing::OpCounters`] see exactly the same number of
    /// pairings.
    ///
    /// On the concurrent backend the parallel unit is a **shard**: each
    /// worker takes one shard's read lock, walks that shard's chunks, and
    /// releases — writers to other shards proceed in parallel, writers to
    /// the locked shard wait for at most one shard scan (see the
    /// [`ConcurrentSubscriptionStore`] consistency model).
    ///
    /// `Err(SlaError::ZeroChunkSize)` when `chunk_size == 0`.
    pub fn process_alert_batch<G: BilinearGroup + Sync>(
        &self,
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
        chunk_size: usize,
    ) -> SlaResult<Vec<u64>> {
        if chunk_size == 0 {
            return Err(SlaError::ZeroChunkSize);
        }
        self.validate_tokens(scheme, tokens)?;
        match &self.store {
            StoreHandle::Exclusive(store) => {
                let units = store.chunked(chunk_size);
                let per_chunk = Self::match_units(&units, scheme, tokens);
                Ok(per_chunk.into_iter().flatten().collect())
            }
            StoreHandle::Concurrent(store) => {
                let shard_ids: Vec<usize> = (0..store.shard_count()).collect();
                let per_shard = Self::match_shards_locked(
                    store.as_ref(),
                    &shard_ids,
                    scheme,
                    tokens,
                    chunk_size,
                );
                Ok(per_shard.into_iter().flatten().collect())
            }
        }
    }

    /// Exhaustively matches one shard of the concurrent store under its
    /// read lock, chunk by chunk in order — the per-worker unit of the
    /// concurrent batch path.
    fn match_one_shard_locked<G: BilinearGroup>(
        store: &dyn ConcurrentSubscriptionStore,
        shard: usize,
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
        chunk_size: usize,
    ) -> Vec<u64> {
        let mut notified = Vec::new();
        store.read_shard(shard, &mut |records| {
            for chunk in records.chunks(chunk_size) {
                notified.extend(Self::match_chunk_exhaustive(chunk, scheme, tokens));
            }
        });
        notified
    }

    #[cfg(feature = "parallel")]
    fn match_shards_locked<G: BilinearGroup + Sync>(
        store: &dyn ConcurrentSubscriptionStore,
        shard_ids: &[usize],
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
        chunk_size: usize,
    ) -> Vec<Vec<u64>> {
        use rayon::prelude::*;
        shard_ids
            .par_iter()
            .map(|&shard| Self::match_one_shard_locked(store, shard, scheme, tokens, chunk_size))
            .collect()
    }

    #[cfg(not(feature = "parallel"))]
    fn match_shards_locked<G: BilinearGroup + Sync>(
        store: &dyn ConcurrentSubscriptionStore,
        shard_ids: &[usize],
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
        chunk_size: usize,
    ) -> Vec<Vec<u64>> {
        shard_ids
            .iter()
            .map(|&shard| Self::match_one_shard_locked(store, shard, scheme, tokens, chunk_size))
            .collect()
    }

    /// Below this store size [`Self::default_batch_chunk_size`] picks a
    /// single chunk, keeping the default path serial where parallelism
    /// cannot pay for its thread spawns.
    const PARALLEL_MIN_STORE: usize = 256;

    #[cfg(feature = "parallel")]
    fn match_units<G: BilinearGroup + Sync>(
        units: &[&[StoredSubscription]],
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
    ) -> Vec<Vec<u64>> {
        use rayon::prelude::*;
        units
            .par_iter()
            .map(|chunk| Self::match_chunk_exhaustive(chunk, scheme, tokens))
            .collect()
    }

    #[cfg(not(feature = "parallel"))]
    fn match_units<G: BilinearGroup + Sync>(
        units: &[&[StoredSubscription]],
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
    ) -> Vec<Vec<u64>> {
        units
            .iter()
            .map(|chunk| Self::match_chunk_exhaustive(chunk, scheme, tokens))
            .collect()
    }
}
