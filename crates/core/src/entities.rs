//! The three parties of the system model (§2.2).

use crate::convert::{codeword_to_pattern, index_to_attribute};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sla_encoding::CellCodebook;
use sla_hve::{
    Ciphertext, HveScheme, PreparedPublicKey, PreparedSecretKey, PublicKey, SecretKey, Token,
};
use sla_pairing::BilinearGroup;

/// The Trusted Authority: holds the HVE secret key and the codebook's
/// coding tree; issues minimized search tokens for alert zones. "The TA
/// does not have access to user locations" — it only ever sees cell sets
/// supplied by the alert source.
///
/// After [`TrustedAuthority::prepare`] the TA also holds fixed-base tables
/// over its key material, so every token of every alert reuses the same
/// per-base precomputation.
#[derive(Debug)]
pub struct TrustedAuthority {
    /// The secret key, in exactly one state: plain after construction,
    /// table-backed after [`Self::prepare`] (the prepared form embeds the
    /// key, so nothing is stored twice).
    key: TaKey,
    codebook: CellCodebook,
}

/// The TA's key-material state.
#[derive(Debug)]
enum TaKey {
    Plain(SecretKey),
    Prepared(Box<PreparedSecretKey>),
}

impl TaKey {
    fn secret_key(&self) -> &SecretKey {
        match self {
            TaKey::Plain(sk) => sk,
            TaKey::Prepared(psk) => psk.secret_key(),
        }
    }
}

impl TrustedAuthority {
    /// Creates the TA from setup artifacts.
    pub fn new(sk: SecretKey, codebook: CellCodebook) -> Self {
        assert_eq!(
            sk.width(),
            codebook.width_bits(),
            "secret key width must match the codebook"
        );
        TrustedAuthority {
            key: TaKey::Plain(sk),
            codebook,
        }
    }

    /// Builds the secret key's fixed-base tables; subsequent
    /// [`Self::issue_tokens`] calls route through them (same operations
    /// and outputs, lower wall-clock).
    pub fn prepare<G: BilinearGroup>(&mut self, scheme: &HveScheme<'_, G>) {
        self.key = TaKey::Prepared(Box::new(scheme.prepare_secret_key(self.key.secret_key())));
    }

    /// The codebook (public: users need the indexes).
    pub fn codebook(&self) -> &CellCodebook {
        &self.codebook
    }

    /// Issues the minimized token set for an alert zone (Fig. 3's
    /// "minimization algorithm" + token encryption), through the prepared
    /// key tables when [`Self::prepare`] has run.
    pub fn issue_tokens<G: BilinearGroup, R: Rng>(
        &self,
        scheme: &HveScheme<'_, G>,
        alert_cells: &[usize],
        rng: &mut R,
    ) -> Vec<Token> {
        self.codebook
            .tokens_for(alert_cells)
            .iter()
            .map(|cw| {
                let pattern = codeword_to_pattern(cw);
                match &self.key {
                    TaKey::Prepared(psk) => scheme.gen_token_prepared(psk, &pattern, rng),
                    TaKey::Plain(sk) => scheme.gen_token(sk, &pattern, rng),
                }
            })
            .collect()
    }

    /// Analytic pairing cost of an alert against `n_ciphertexts`
    /// ciphertexts — what the SP *will* spend evaluating the tokens.
    pub fn analytic_pairing_cost(&self, alert_cells: &[usize], n_ciphertexts: u64) -> u64 {
        self.codebook.pairing_cost(alert_cells, n_ciphertexts)
    }
}

/// A mobile user: knows its own cell, encrypts the cell's index under the
/// public key, and submits the ciphertext.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MobileUser {
    /// Application-level identifier (also the HVE message payload, so a
    /// successful match reveals *whom* to notify and nothing else).
    pub id: u64,
    /// Current grid cell.
    pub cell: usize,
}

impl MobileUser {
    /// Creates a user at a cell.
    pub fn new(id: u64, cell: usize) -> Self {
        MobileUser { id, cell }
    }

    /// Encrypts the user's location update (Fig. 1: users A and B encrypt
    /// their indexes with PK).
    pub fn encrypt_update<G: BilinearGroup, R: Rng>(
        &self,
        scheme: &HveScheme<'_, G>,
        pk: &PublicKey,
        codebook: &CellCodebook,
        rng: &mut R,
    ) -> Ciphertext {
        let index = codebook.index_of(self.cell);
        let attr = index_to_attribute(index);
        let msg = scheme.encode_message(self.id);
        scheme.encrypt(pk, &attr, &msg, rng)
    }

    /// [`Self::encrypt_update`] through a prepared public key — identical
    /// output, with the fixed-base tables amortized across all users
    /// encrypting under the same key.
    pub fn encrypt_update_prepared<G: BilinearGroup, R: Rng>(
        &self,
        scheme: &HveScheme<'_, G>,
        ppk: &PreparedPublicKey,
        codebook: &CellCodebook,
        rng: &mut R,
    ) -> Ciphertext {
        let index = codebook.index_of(self.cell);
        let attr = index_to_attribute(index);
        let msg = scheme.encode_message(self.id);
        scheme.encrypt_prepared(ppk, &attr, &msg, rng)
    }
}

/// A stored subscription at the SP: the submitting user's id (routing
/// metadata) and the opaque ciphertext.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    /// Routing identifier (who to push the notification to).
    pub user_id: u64,
    /// The encrypted location update.
    pub ciphertext: Ciphertext,
}

/// The Service Provider: stores encrypted updates, evaluates tokens, and
/// notifies matched users. Learns only "user u is inside the alert zone" /
/// "user u is not" — nothing else (§6).
///
/// The stored ciphertexts (and the tokens handed in per alert) keep their
/// group elements in the engine's Montgomery residue domain, so batch
/// alert processing pays a single reduction pass per pairing — the
/// per-operand domain conversions are precomputed once, at encryption /
/// token-issuance time, and reused across every (token, ciphertext) pair.
#[derive(Debug, Default)]
pub struct ServiceProvider {
    store: Vec<Subscription>,
}

impl ServiceProvider {
    /// An SP with an empty store.
    pub fn new() -> Self {
        ServiceProvider { store: Vec::new() }
    }

    /// Accepts an encrypted location update.
    pub fn accept_update(&mut self, subscription: Subscription) {
        self.store.push(subscription);
    }

    /// Number of stored ciphertexts.
    pub fn n_subscriptions(&self) -> usize {
        self.store.len()
    }

    /// The stored subscriptions.
    pub fn subscriptions(&self) -> &[Subscription] {
        &self.store
    }

    /// Evaluates every token against every stored ciphertext and returns
    /// the ids of users inside the alert zone (the matching of §2.2: all
    /// non-star bits must match; the decrypted message is the user id).
    pub fn match_alert<G: BilinearGroup>(
        &self,
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
    ) -> Vec<u64> {
        let mut notified = Vec::new();
        for sub in &self.store {
            for token in tokens {
                if let Some(id) = scheme.query_decode(token, &sub.ciphertext) {
                    // Sanity: the recovered payload is the submitting
                    // user's id.
                    debug_assert_eq!(id, sub.user_id);
                    notified.push(sub.user_id);
                    break; // already matched; skip remaining tokens
                }
            }
        }
        notified
    }

    /// Like [`Self::match_alert`] but evaluates *every* (token,
    /// ciphertext) pair without early exit — the worst-case evaluation the
    /// paper's cost model counts (`Σ_tokens (1+2·|J|) · n_ciphertexts`).
    pub fn match_alert_exhaustive<G: BilinearGroup>(
        &self,
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
    ) -> Vec<u64> {
        Self::match_chunk_exhaustive(&self.store, scheme, tokens)
    }

    /// Exhaustive matching of one contiguous chunk of the store; the unit
    /// of work both the serial and the parallel batch paths share, so
    /// their outcomes are identical by construction.
    fn match_chunk_exhaustive<G: BilinearGroup>(
        chunk: &[Subscription],
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
    ) -> Vec<u64> {
        let mut notified = Vec::new();
        for sub in chunk {
            let mut hit = false;
            for token in tokens {
                if scheme.query_decode(token, &sub.ciphertext) == Some(sub.user_id) {
                    hit = true;
                }
            }
            if hit {
                notified.push(sub.user_id);
            }
        }
        notified
    }

    /// Default chunk size for [`Self::process_alert_batch`]: a handful of
    /// chunks per available core so stragglers rebalance — or one single
    /// chunk when only one core is available or the store is small, where
    /// the rayon shim's per-call thread spawns (scoped threads, no
    /// persistent pool — it is `forbid(unsafe_code)`) outweigh the
    /// matching work. An explicit `chunk_size` always takes the parallel
    /// machinery, which is what the equivalence tests exercise.
    pub fn default_batch_chunk_size(&self) -> usize {
        let threads = Self::match_threads();
        if threads <= 1 || self.store.len() < Self::PARALLEL_MIN_STORE {
            return self.store.len().max(1);
        }
        self.store.len().div_ceil(threads * 4).max(1)
    }

    #[cfg(feature = "parallel")]
    fn match_threads() -> usize {
        rayon::current_num_threads()
    }

    #[cfg(not(feature = "parallel"))]
    fn match_threads() -> usize {
        1
    }

    /// Batch variant of [`Self::match_alert_exhaustive`]: partitions the
    /// ciphertext store into `chunk_size`-sized chunks and matches them in
    /// parallel (rayon; `parallel` feature, on by default — serial chunks
    /// otherwise).
    ///
    /// Chunk results are concatenated in store order, so the returned ids
    /// are **byte-identical** to the serial path's regardless of thread
    /// count, and the engine's atomic [`sla_pairing::OpCounters`] see
    /// exactly the same number of pairings.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    pub fn process_alert_batch<G: BilinearGroup + Sync>(
        &self,
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
        chunk_size: usize,
    ) -> Vec<u64> {
        assert!(chunk_size > 0, "chunk size must be positive");
        let per_chunk: Vec<Vec<u64>> = self.match_chunks(scheme, tokens, chunk_size);
        per_chunk.into_iter().flatten().collect()
    }

    /// Below this store size [`Self::default_batch_chunk_size`] picks a
    /// single chunk, keeping the default path serial where parallelism
    /// cannot pay for its thread spawns.
    const PARALLEL_MIN_STORE: usize = 256;

    #[cfg(feature = "parallel")]
    fn match_chunks<G: BilinearGroup + Sync>(
        &self,
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
        chunk_size: usize,
    ) -> Vec<Vec<u64>> {
        use rayon::prelude::*;
        self.store
            .par_chunks(chunk_size)
            .map(|chunk| Self::match_chunk_exhaustive(chunk, scheme, tokens))
            .collect()
    }

    #[cfg(not(feature = "parallel"))]
    fn match_chunks<G: BilinearGroup + Sync>(
        &self,
        scheme: &HveScheme<'_, G>,
        tokens: &[Token],
        chunk_size: usize,
    ) -> Vec<Vec<u64>> {
        self.store
            .chunks(chunk_size)
            .map(|chunk| Self::match_chunk_exhaustive(chunk, scheme, tokens))
            .collect()
    }
}
