//! Moving-zone trajectories (arXiv 2301.06238): an epicenter that
//! translates at a fixed velocity while the zone radius grows or
//! shrinks, evaluated per epoch as a disk over the grid.

use sla_grid::{AlertZone, Grid, Point};

/// Meters per degree of latitude (and of longitude at the equator),
/// matching the grid's equirectangular distance model.
const METERS_PER_DEG: f64 = 6_371_000.0 * std::f64::consts::PI / 180.0;

/// A storm-track / plume trajectory: deterministic closed form in the
/// epoch index, so replay needs no state — and two consumers (e.g. the
/// tracked and full-regeneration alert paths under test) see byte-equal
/// cell sets.
///
/// The zone may grow, shrink (`radius_delta_m < 0`, collapsing to the
/// epicenter's own cell — the grid's disk semantics always keep it while
/// the epicenter is inside), or leave the grid entirely, which yields an
/// **empty** cell set that minimizes to zero tokens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneTrajectory {
    /// Epicenter at epoch 0.
    pub start: Point,
    /// Northward epicenter velocity, meters per epoch (negative: south).
    pub north_m_per_epoch: f64,
    /// Eastward epicenter velocity, meters per epoch (negative: west).
    pub east_m_per_epoch: f64,
    /// Zone radius at epoch 0, in meters.
    pub start_radius_m: f64,
    /// Radius change per epoch, in meters (negative: shrinking).
    pub radius_delta_m: f64,
}

impl ZoneTrajectory {
    /// A storm track crossing `grid` west → east: starts one quarter in
    /// from the west edge at mid-height, moves two cell widths east per
    /// epoch, and grows by half a cell width per epoch from an initial
    /// two-cell-width radius. Scales with the grid's geometry.
    pub fn storm_track(grid: &Grid) -> Self {
        let (cell_h, cell_w) = grid.cell_size_m();
        let bbox = grid.bbox();
        let start = Point::new(
            bbox.center().lat,
            bbox.min_lon + (bbox.max_lon - bbox.min_lon) * 0.25,
        );
        ZoneTrajectory {
            start,
            north_m_per_epoch: 0.25 * cell_h,
            east_m_per_epoch: 2.0 * cell_w,
            start_radius_m: 2.0 * cell_w,
            radius_delta_m: 0.5 * cell_w,
        }
    }

    /// The epicenter at `epoch` (may lie outside the grid).
    pub fn epicenter_at(&self, epoch: usize) -> Point {
        let t = epoch as f64;
        let lat = self.start.lat + t * self.north_m_per_epoch / METERS_PER_DEG;
        let lon = self.start.lon
            + t * self.east_m_per_epoch / (METERS_PER_DEG * self.start.lat.to_radians().cos());
        Point::new(lat, lon)
    }

    /// The zone radius at `epoch`, clamped at zero once a shrinking
    /// trajectory collapses.
    pub fn radius_at(&self, epoch: usize) -> f64 {
        (self.start_radius_m + epoch as f64 * self.radius_delta_m).max(0.0)
    }

    /// The zone at `epoch` as a disk over `grid` — empty once the
    /// trajectory has left the grid or the radius has collapsed.
    pub fn zone_at(&self, grid: &Grid, epoch: usize) -> AlertZone {
        AlertZone::disk(grid, &self.epicenter_at(epoch), self.radius_at(epoch))
    }

    /// [`Self::zone_at`] as sorted, deduplicated cell indices.
    pub fn cells_at(&self, grid: &Grid, epoch: usize) -> Vec<usize> {
        let mut cells = self.zone_at(grid, epoch).cell_indices();
        cells.sort_unstable();
        cells.dedup();
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_track_moves_east_and_grows() {
        let grid = Grid::chicago_downtown_32();
        let t = ZoneTrajectory::storm_track(&grid);
        let e0 = t.epicenter_at(0);
        let e3 = t.epicenter_at(3);
        assert!(e3.lon > e0.lon);
        assert!(t.radius_at(3) > t.radius_at(0));
        let c0 = t.cells_at(&grid, 0);
        let c1 = t.cells_at(&grid, 1);
        assert!(!c0.is_empty() && !c1.is_empty());
        assert_ne!(c0, c1, "a moving zone must change its cell set");
        // Consecutive epochs overlap: that's what delta regeneration
        // exploits.
        assert!(c1.iter().any(|c| c0.contains(c)));
    }

    #[test]
    fn trajectory_exits_grid_to_empty() {
        let grid = Grid::chicago_downtown_32();
        let (_, cell_w) = grid.cell_size_m();
        let mut t = ZoneTrajectory::storm_track(&grid);
        t.east_m_per_epoch = 40.0 * cell_w;
        t.radius_delta_m = 0.0;
        assert!(!t.cells_at(&grid, 0).is_empty());
        assert!(t.cells_at(&grid, 12).is_empty(), "zone left the grid");
    }

    #[test]
    fn shrinking_radius_collapses_to_epicenter_cell() {
        let grid = Grid::chicago_downtown_32();
        let (_, cell_w) = grid.cell_size_m();
        let t = ZoneTrajectory {
            start: grid.bbox().center(),
            north_m_per_epoch: 0.0,
            east_m_per_epoch: 0.0,
            start_radius_m: 2.0 * cell_w,
            radius_delta_m: -cell_w,
        };
        assert!(t.cells_at(&grid, 0).len() > 1);
        assert_eq!(t.radius_at(9), 0.0);
        // An inside epicenter always keeps its own cell, however small
        // the radius (the grid's documented disk semantics).
        assert_eq!(t.cells_at(&grid, 9).len(), 1);
    }
}
