//! Contact-tracing bursts: long quiet stretches of near-point zones
//! punctuated by sudden many-cell activations (an exposure event being
//! traced across a neighborhood at once).

use rand::Rng;
use sla_grid::{AlertZone, ZoneSampler};

/// The burst cadence: every `burst_every`-th epoch (1-based) activates a
/// wide zone of `burst_radius_m`; all other epochs stay at
/// `quiet_radius_m` (typically a single cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstPattern {
    /// Radius of the quiet epochs' zones, in meters.
    pub quiet_radius_m: f64,
    /// Radius of a burst epoch's zone, in meters.
    pub burst_radius_m: f64,
    /// Burst period: epoch `e` (0-based) bursts iff
    /// `(e + 1) % burst_every == 0`. Must be non-zero.
    pub burst_every: usize,
}

impl BurstPattern {
    /// Whether 0-based epoch `e` is a burst epoch.
    ///
    /// # Panics
    /// Panics if `burst_every` is zero.
    pub fn is_burst(&self, epoch: usize) -> bool {
        (epoch + 1).is_multiple_of(self.burst_every)
    }

    /// The zone radius for 0-based epoch `e`.
    pub fn radius_at(&self, epoch: usize) -> f64 {
        if self.is_burst(epoch) {
            self.burst_radius_m
        } else {
            self.quiet_radius_m
        }
    }

    /// Samples one zone per epoch from the sampler's popularity surface
    /// at this pattern's cadence. Deterministic for a seeded `rng`.
    pub fn zones<R: Rng>(
        &self,
        sampler: &ZoneSampler,
        epochs: usize,
        rng: &mut R,
    ) -> Vec<AlertZone> {
        (0..epochs)
            .map(|e| sampler.sample_zone(self.radius_at(e), rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_grid::{Grid, ProbabilityMap};

    #[test]
    fn bursts_are_much_wider_than_quiet_epochs() {
        let grid = Grid::chicago_downtown_32();
        let (_, cell_w) = grid.cell_size_m();
        let probs = ProbabilityMap::uniform(grid.n_cells());
        let sampler = ZoneSampler::new(grid, &probs);
        let pattern = BurstPattern {
            quiet_radius_m: 0.4 * cell_w,
            burst_radius_m: 6.0 * cell_w,
            burst_every: 3,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let zones = pattern.zones(&sampler, 6, &mut rng);
        assert_eq!(zones.len(), 6);
        assert!(pattern.is_burst(2) && pattern.is_burst(5));
        let quiet_max = [0, 1, 3, 4].iter().map(|&e| zones[e].len()).max().unwrap();
        assert!(
            zones[2].len() > 4 * quiet_max.max(1),
            "burst epoch must activate many more cells ({} vs quiet max {})",
            zones[2].len(),
            quiet_max
        );
    }
}
