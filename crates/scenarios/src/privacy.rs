//! Graded-granularity privacy levels (arXiv 2004.09005): level `k`
//! coarsens every cell to its `2^k × 2^k` block, trading pairing cost
//! and notification precision for location privacy.

use sla_grid::{CellId, Grid};

/// A privacy/granularity level: `0` is exact cells, level `k` snaps a
/// cell to the representative (top-left member) of its `2^k × 2^k` block.
///
/// A user subscribed at level `k` reveals only which block they are in;
/// the cost is **spurious notifications** — the user is alerted whenever
/// their block intersects the zone, even if their exact cell does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GranularityLevel(pub u8);

impl GranularityLevel {
    /// Exact-cell granularity (no coarsening).
    pub const EXACT: GranularityLevel = GranularityLevel(0);

    /// Side length of this level's blocks, in cells (`2^k`).
    pub fn block_span(self) -> usize {
        1usize << self.0
    }

    /// The block representative of `cell`: the top-left cell of its
    /// `2^k × 2^k` block. Level 0 is the identity.
    ///
    /// # Panics
    /// Panics if `cell` is outside the grid.
    pub fn snap_cell(self, grid: &Grid, cell: usize) -> usize {
        let (row, col) = grid.row_col(CellId(cell));
        let span = self.block_span();
        (row - row % span) * grid.cols() + (col - col % span)
    }

    /// Snaps a cell set to its block representatives: sorted,
    /// deduplicated. A zone snapped this way is the coarsened zone the
    /// TA issues tokens for at this level — usually fewer cells, hence
    /// cheaper tokens, but covering a superset of the exact area.
    pub fn snap_cells(self, grid: &Grid, cells: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = cells.iter().map(|&c| self.snap_cell(grid, c)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl std::fmt::Display for GranularityLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_grid::BoundingBox;

    fn grid4() -> Grid {
        Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 4, 4)
    }

    #[test]
    fn level_zero_is_identity() {
        let grid = grid4();
        for cell in 0..16 {
            assert_eq!(GranularityLevel::EXACT.snap_cell(&grid, cell), cell);
        }
    }

    #[test]
    fn level_one_blocks() {
        let grid = grid4();
        let l1 = GranularityLevel(1);
        // 4×4 grid, 2×2 blocks: reps are cells 0, 2, 8, 10.
        assert_eq!(l1.snap_cell(&grid, 0), 0);
        assert_eq!(l1.snap_cell(&grid, 5), 0);
        assert_eq!(l1.snap_cell(&grid, 6), 2);
        assert_eq!(l1.snap_cell(&grid, 15), 10);
        assert_eq!(l1.snap_cells(&grid, &[0, 1, 4, 5, 6]), vec![0, 2]);
    }

    #[test]
    fn level_two_collapses_grid4_to_one_block() {
        let grid = grid4();
        let l2 = GranularityLevel(2);
        let all: Vec<usize> = (0..16).collect();
        assert_eq!(l2.snap_cells(&grid, &all), vec![0]);
    }

    #[test]
    fn spans_not_dividing_the_grid_still_partition() {
        // 5×5 grid at level 1: ragged right/bottom blocks snap to their
        // own top-left representative inside the grid.
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 5, 5);
        let l1 = GranularityLevel(1);
        assert_eq!(l1.snap_cell(&grid, 24), 24); // (4,4) → (4,4)
        assert_eq!(l1.snap_cell(&grid, 14), 14); // (2,4) → (2,4)
        for cell in 0..25 {
            let rep = l1.snap_cell(&grid, cell);
            assert_eq!(l1.snap_cell(&grid, rep), rep, "rep is a fixed point");
        }
    }
}
