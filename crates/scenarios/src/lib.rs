//! # sla-scenarios
//!
//! The scenario engine: epoch-by-epoch replayable workloads with
//! plaintext ground-truth oracles, covering the dynamic regimes the
//! static radius sweeps never touch:
//!
//! * **Moving zones** ([`ZoneTrajectory`]) — storm-track / contamination
//!   plume trajectories that translate, grow and shrink per epoch
//!   (*Supporting Secure Dynamic Alert Zones*, arXiv 2301.06238). The
//!   per-epoch cell delta is what the tracked alert path's incremental
//!   token regeneration exploits.
//! * **Contact-tracing bursts** ([`BurstPattern`]) — long quiet stretches
//!   of near-point zones punctuated by sudden many-cell activations
//!   against a large subscriber base.
//! * **Mixed privacy levels** ([`GranularityLevel`]) — the graded
//!   granularity hierarchy of the *Tunable Privacy-Performance
//!   Trade-off* system (arXiv 2004.09005): each user subscribes at a
//!   chosen level `k` (their cell coarsened to its `2^k × 2^k` block)
//!   and the service provider matches tokens at mixed granularities;
//!   coarser levels buy privacy with spurious notifications.
//! * **Zipf-skewed city density** ([`zipf_probabilities`]) — subscriber
//!   placement following a rank-skewed popularity surface, the regime
//!   Huffman cell codes are designed for.
//!
//! Every scenario materializes as a [`ScenarioWorkload`]: a
//! [`ChurnWorkload`](sla_datasets::ChurnWorkload) of lifecycle events
//! plus per-epoch alert zones, with oracles
//! ([`ScenarioWorkload::expected_notified_at`],
//! [`ScenarioWorkload::expected_notified_mixed`]) that let any consumer
//! check encrypted matching — at any granularity — against plaintext
//! reality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod burst;
mod privacy;
mod scenario;
mod trajectory;
mod zipf;

pub use burst::BurstPattern;
pub use privacy::GranularityLevel;
pub use scenario::{ParseScenarioError, ScenarioConfig, ScenarioKind, ScenarioWorkload};
pub use trajectory::ZoneTrajectory;
pub use zipf::{top_share, zipf_probabilities};
