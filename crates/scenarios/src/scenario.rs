//! The scenario catalogue: named workload generators with ground-truth
//! oracles, all materializing as churn workloads so every existing
//! replay consumer (bench runner, wire loadgen, equivalence tests) can
//! drive them unchanged.

use std::collections::BTreeSet;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_datasets::{ChurnConfig, ChurnEvent, ChurnWorkload};
use sla_grid::{Grid, ProbabilityMap, ZoneSampler};

use crate::burst::BurstPattern;
use crate::privacy::GranularityLevel;
use crate::trajectory::ZoneTrajectory;
use crate::zipf::zipf_probabilities;

/// The four scenario families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// A storm-track zone translating and growing across the grid.
    Moving,
    /// Near-point zones with periodic many-cell burst activations.
    Burst,
    /// Users subscribed at mixed granularity levels (L0/L1/L2).
    Mixed,
    /// Subscriber placement following a Zipf popularity surface.
    Zipf,
}

impl ScenarioKind {
    /// Every scenario, in canonical order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::Moving,
        ScenarioKind::Burst,
        ScenarioKind::Mixed,
        ScenarioKind::Zipf,
    ];

    /// The scenario's canonical (CLI) name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Moving => "moving",
            ScenarioKind::Burst => "burst",
            ScenarioKind::Mixed => "mixed",
            ScenarioKind::Zipf => "zipf",
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A scenario name that is not one of `{moving, burst, mixed, zipf}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError(pub String);

impl std::fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scenario '{}' (expected moving, burst, mixed or zipf)",
            self.0
        )
    }
}

impl std::error::Error for ParseScenarioError {}

impl FromStr for ScenarioKind {
    type Err = ParseScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "moving" => Ok(ScenarioKind::Moving),
            "burst" => Ok(ScenarioKind::Burst),
            "mixed" => Ok(ScenarioKind::Mixed),
            "zipf" => Ok(ScenarioKind::Zipf),
            other => Err(ParseScenarioError(other.to_string())),
        }
    }
}

/// Size and seed knobs shared by every scenario generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioConfig {
    /// Subscriber population (user ids `0..users`).
    pub users: u64,
    /// Epochs after the initial subscription wave.
    pub epochs: usize,
    /// Master seed: same seed, same workload, byte for byte.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            users: 64,
            epochs: 6,
            seed: 20_210_323,
        }
    }
}

/// One generated scenario: the grid, the placement surface the
/// population was drawn from (feed it to the codebook so Huffman sees
/// the same skew), the per-user privacy levels, and the exact-granularity
/// churn workload (lifecycle events + per-epoch alert cells).
///
/// Coarsened views are derived, never stored: [`Self::at_level`] snaps
/// the whole population to one level,
/// [`Self::level_slice`] extracts one level's users for
/// mixed-granularity serving (one store per level — coarse and exact
/// ciphertexts must not share a store, or a coarse token would falsely
/// match an exact cell that happens to equal a block representative).
#[derive(Debug, Clone)]
pub struct ScenarioWorkload {
    /// Which scenario family generated this workload.
    pub kind: ScenarioKind,
    /// The grid every cell index refers to.
    pub grid: Grid,
    /// The placement surface subscribers were drawn from.
    pub probs: ProbabilityMap,
    /// `levels[user_id]`: the granularity each user subscribed at
    /// (all-`L0` except in the mixed scenario).
    pub levels: Vec<GranularityLevel>,
    /// Exact-granularity lifecycle events and alert cells per epoch.
    pub churn: ChurnWorkload,
}

impl ScenarioWorkload {
    /// Generates the scenario over the paper's 32×32 downtown grid.
    /// Deterministic in `config.seed`.
    pub fn generate(kind: ScenarioKind, config: &ScenarioConfig) -> ScenarioWorkload {
        let grid = Grid::chicago_downtown_32();
        let (_, cell_w) = grid.cell_size_m();
        let mut rng = StdRng::seed_from_u64(config.seed);

        let probs = match kind {
            ScenarioKind::Zipf => zipf_probabilities(grid.n_cells(), 1.1, &mut rng),
            _ => ProbabilityMap::uniform(grid.n_cells()),
        };
        let levels: Vec<GranularityLevel> = match kind {
            // Round-robin over L0/L1/L2: every level is populated for
            // any population size ≥ 3.
            ScenarioKind::Mixed => (0..config.users)
                .map(|u| GranularityLevel((u % 3) as u8))
                .collect(),
            _ => vec![GranularityLevel::EXACT; config.users as usize],
        };

        let sampler = ZoneSampler::new(grid.clone(), &probs);
        let churn_cfg = ChurnConfig {
            users: config.users,
            epochs: config.epochs,
            move_fraction: 0.25,
            unsubscribe_fraction: 0.05,
            resubscribe_fraction: 0.40,
            alert_radius_m: 3.0 * cell_w,
        };
        let mut churn = churn_cfg.generate(&sampler, &mut rng);
        churn.label = format!("scenario-{kind}");

        // Replace the generator's static zones with the scenario's own.
        match kind {
            ScenarioKind::Moving => {
                let track = ZoneTrajectory::storm_track(&grid);
                for (e, epoch) in churn.epochs.iter_mut().enumerate() {
                    epoch.alert_cells = track.cells_at(&grid, e);
                }
            }
            ScenarioKind::Burst => {
                let pattern = BurstPattern {
                    quiet_radius_m: 0.4 * cell_w,
                    burst_radius_m: 6.0 * cell_w,
                    burst_every: 3,
                };
                let zones = pattern.zones(&sampler, churn.epochs.len(), &mut rng);
                for (epoch, zone) in churn.epochs.iter_mut().zip(zones) {
                    epoch.alert_cells = zone.cell_indices();
                    epoch.alert_cells.sort_unstable();
                    epoch.alert_cells.dedup();
                }
            }
            ScenarioKind::Mixed | ScenarioKind::Zipf => {
                for epoch in churn.epochs.iter_mut() {
                    epoch.alert_cells.sort_unstable();
                    epoch.alert_cells.dedup();
                }
            }
        }

        ScenarioWorkload {
            kind,
            grid,
            probs,
            levels,
            churn,
        }
    }

    /// Number of replayable epochs (initial wave included).
    pub fn n_epochs(&self) -> usize {
        self.churn.epochs.len()
    }

    /// The level `user_id` subscribed at (`L0` for unknown users).
    pub fn user_level(&self, user_id: u64) -> GranularityLevel {
        self.levels
            .get(user_id as usize)
            .copied()
            .unwrap_or(GranularityLevel::EXACT)
    }

    /// The distinct levels present in this workload, ascending.
    pub fn distinct_levels(&self) -> Vec<GranularityLevel> {
        let mut out: Vec<GranularityLevel> = self.levels.clone();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The whole workload coarsened to one level: every event cell and
    /// every alert cell snapped to its block representative — the
    /// uniform-privacy knob of the bench matrix. Level 0 is a copy.
    pub fn at_level(&self, level: GranularityLevel) -> ChurnWorkload {
        self.map_events(|_| Some(level))
    }

    /// The sub-workload of one level's users under mixed-granularity
    /// serving: only their events (snapped to `level`), with every
    /// epoch's alert cells snapped too. Replay each slice against its
    /// own store; the union of notified sets across slices is the mixed
    /// outcome ([`Self::expected_notified_mixed`]).
    pub fn level_slice(&self, level: GranularityLevel) -> ChurnWorkload {
        self.map_events(|user_level| (user_level == level).then_some(level))
    }

    /// Shared body of [`Self::at_level`] / [`Self::level_slice`]:
    /// `assign` maps a user's subscribed level to the level their events
    /// are snapped at, or `None` to drop the user.
    fn map_events(
        &self,
        assign: impl Fn(GranularityLevel) -> Option<GranularityLevel>,
    ) -> ChurnWorkload {
        let mut out = self.churn.clone();
        for epoch in out.epochs.iter_mut() {
            epoch.events.retain_mut(|event| {
                let Some(level) = assign(self.user_level(event.user_id())) else {
                    return false;
                };
                match event {
                    ChurnEvent::Subscribe { cell, .. } | ChurnEvent::Move { cell, .. } => {
                        *cell = level.snap_cell(&self.grid, *cell);
                    }
                    ChurnEvent::Unsubscribe { .. } => {}
                }
                true
            });
            // The alert cover is the union of every present level's
            // snapped zone — computed per slice, so each slice snaps to
            // its own single level.
            let levels: BTreeSet<GranularityLevel> = self
                .levels
                .iter()
                .filter_map(|&l| assign(l))
                .chain(assign(GranularityLevel::EXACT))
                .collect();
            let mut cells: Vec<usize> = levels
                .iter()
                .flat_map(|l| l.snap_cells(&self.grid, &epoch.alert_cells))
                .collect();
            cells.sort_unstable();
            cells.dedup();
            epoch.alert_cells = cells;
        }
        out
    }

    /// Ground truth with the **whole population** served at `level`:
    /// user ids notified at `epoch_index`, sorted — a user is notified
    /// iff their block intersects the zone's block cover.
    pub fn expected_notified_at(&self, epoch_index: usize, level: GranularityLevel) -> Vec<u64> {
        let zone: BTreeSet<usize> = level
            .snap_cells(&self.grid, &self.churn.epochs[epoch_index].alert_cells)
            .into_iter()
            .collect();
        self.churn
            .positions_after(epoch_index)
            .into_iter()
            .filter(|&(_, cell)| zone.contains(&level.snap_cell(&self.grid, cell)))
            .map(|(user, _)| user)
            .collect()
    }

    /// Ground truth under mixed-granularity serving: each user matched
    /// at **their own** subscribed level. Sorted user ids.
    pub fn expected_notified_mixed(&self, epoch_index: usize) -> Vec<u64> {
        let alert = &self.churn.epochs[epoch_index].alert_cells;
        self.churn
            .positions_after(epoch_index)
            .into_iter()
            .filter(|&(user, cell)| {
                let level = self.user_level(user);
                let zone: BTreeSet<usize> =
                    level.snap_cells(&self.grid, alert).into_iter().collect();
                zone.contains(&level.snap_cell(&self.grid, cell))
            })
            .map(|(user, _)| user)
            .collect()
    }

    /// Exact-granularity ground truth (everyone at L0): who is *really*
    /// inside the zone. The difference against a coarser oracle is the
    /// privacy knob's spurious-notification cost.
    pub fn exact_notified(&self, epoch_index: usize) -> Vec<u64> {
        self.expected_notified_at(epoch_index, GranularityLevel::EXACT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            users: 30,
            epochs: 4,
            seed: 11,
        }
    }

    #[test]
    fn generation_is_deterministic_per_kind() {
        for kind in ScenarioKind::ALL {
            let a = ScenarioWorkload::generate(kind, &small());
            let b = ScenarioWorkload::generate(kind, &small());
            assert_eq!(a.churn, b.churn, "{kind}");
            assert_eq!(a.levels, b.levels, "{kind}");
            assert_eq!(a.n_epochs(), small().epochs + 1, "{kind}");
            assert!(
                a.churn.epochs.iter().any(|e| !e.alert_cells.is_empty()),
                "{kind}: at least one epoch must alert"
            );
        }
    }

    #[test]
    fn parse_roundtrip_and_rejection() {
        for kind in ScenarioKind::ALL {
            assert_eq!(kind.name().parse::<ScenarioKind>().unwrap(), kind);
        }
        let err = "tornado".parse::<ScenarioKind>().unwrap_err();
        assert_eq!(err, ParseScenarioError("tornado".into()));
    }

    #[test]
    fn moving_zone_changes_across_epochs() {
        let w = ScenarioWorkload::generate(ScenarioKind::Moving, &small());
        let zones: Vec<_> = w.churn.epochs.iter().map(|e| &e.alert_cells).collect();
        assert!(zones.windows(2).any(|p| p[0] != p[1]));
    }

    #[test]
    fn coarser_levels_notify_supersets() {
        for kind in [ScenarioKind::Moving, ScenarioKind::Zipf] {
            let w = ScenarioWorkload::generate(kind, &small());
            for e in 0..w.n_epochs() {
                let exact = w.exact_notified(e);
                let coarse = w.expected_notified_at(e, GranularityLevel(2));
                for user in &exact {
                    assert!(
                        coarse.contains(user),
                        "{kind} epoch {e}: L2 must notify a superset of L0"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_oracle_equals_union_of_level_slices() {
        let w = ScenarioWorkload::generate(ScenarioKind::Mixed, &small());
        assert_eq!(w.distinct_levels().len(), 3);
        for e in 0..w.n_epochs() {
            let mut union: Vec<u64> = Vec::new();
            for level in w.distinct_levels() {
                let slice = w.level_slice(level);
                let zone: BTreeSet<usize> = slice.epochs[e].alert_cells.iter().copied().collect();
                union.extend(
                    slice
                        .positions_after(e)
                        .into_iter()
                        .filter(|&(_, cell)| zone.contains(&cell))
                        .map(|(user, _)| user),
                );
            }
            union.sort_unstable();
            assert_eq!(union, w.expected_notified_mixed(e), "epoch {e}");
        }
    }

    #[test]
    fn at_level_zero_is_the_exact_workload() {
        let w = ScenarioWorkload::generate(ScenarioKind::Burst, &small());
        assert_eq!(w.at_level(GranularityLevel::EXACT), w.churn);
    }
}
