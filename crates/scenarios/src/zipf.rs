//! Zipf-skewed city density: a rank-skewed popularity surface for
//! subscriber placement, the regime where the paper's Huffman cell codes
//! pay off (popular cells get short codewords).

use rand::Rng;
use sla_grid::ProbabilityMap;

/// A Zipf popularity surface over `n_cells`: cell popularity follows
/// `p(rank) ∝ 1 / rank^exponent` with the rank-to-cell assignment drawn
/// from `rng` (a seeded shuffle), so the "city center" lands somewhere
/// different per seed but the skew profile is exact.
///
/// # Panics
/// Panics if `n_cells` is zero or `exponent` is not finite.
pub fn zipf_probabilities<R: Rng>(n_cells: usize, exponent: f64, rng: &mut R) -> ProbabilityMap {
    assert!(n_cells > 0, "need at least one cell");
    assert!(exponent.is_finite(), "exponent must be finite");
    // Fisher–Yates over the cell order: position i holds the cell of
    // popularity rank i.
    let mut order: Vec<usize> = (0..n_cells).collect();
    for i in (1..n_cells).rev() {
        let j = rng.gen_range(0, i as u64 + 1) as usize;
        order.swap(i, j);
    }
    let mut probs = vec![0.0f64; n_cells];
    let total: f64 = (1..=n_cells)
        .map(|rank| (rank as f64).powf(-exponent))
        .sum();
    for (rank, &cell) in order.iter().enumerate() {
        probs[cell] = ((rank + 1) as f64).powf(-exponent) / total;
    }
    ProbabilityMap::try_new(probs).expect("zipf weights are positive and finite")
}

/// The probability mass held by the most popular `top` cells — a skew
/// diagnostic for result tables (≈ `top/n` under a uniform surface, far
/// larger under Zipf).
pub fn top_share(probs: &ProbabilityMap, top: usize) -> f64 {
    let mut weights: Vec<f64> = (0..probs.len()).map(|c| probs.get(c)).collect();
    weights.sort_by(|a, b| b.partial_cmp(a).expect("finite weights"));
    weights.iter().take(top).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_normalized_and_skewed() {
        let mut rng = StdRng::seed_from_u64(9);
        let probs = zipf_probabilities(1024, 1.1, &mut rng);
        let total: f64 = (0..1024).map(|c| probs.get(c)).sum();
        assert!((total - 1.0).abs() < 1e-9, "normalized, got {total}");
        // Top 1% of cells should hold far more than 1% of the mass.
        let share = top_share(&probs, 10);
        assert!(share > 0.2, "zipf(1.1) top-10/1024 share was {share}");
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let a = zipf_probabilities(64, 1.0, &mut StdRng::seed_from_u64(3));
        let b = zipf_probabilities(64, 1.0, &mut StdRng::seed_from_u64(3));
        let c = zipf_probabilities(64, 1.0, &mut StdRng::seed_from_u64(4));
        let as_vec = |p: &ProbabilityMap| (0..64).map(|i| p.get(i)).collect::<Vec<_>>();
        assert_eq!(as_vec(&a), as_vec(&b));
        assert_ne!(as_vec(&a), as_vec(&c), "different seeds, different city");
    }
}
