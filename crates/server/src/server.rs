//! The blocking server: listeners, a hand-rolled worker pool, the
//! in-flight request budget, and graceful drain.
//!
//! ## Shape
//!
//! One nonblocking accept loop feeds accepted streams to `workers`
//! pre-spawned threads over a bounded channel. Each worker owns one
//! connection at a time and runs [`serve_connection`] — a standalone
//! function over any `Read + Write` stream, which is the seam an epoll
//! reactor would replace: the poll loop would own the streams and call
//! the same per-frame logic, and everything above it (service, codec,
//! budget) is already non-blocking-agnostic.
//!
//! ## Backpressure, two levels
//!
//! * **Connections**: when every worker is occupied and the hand-off
//!   queue is full, a new connection is answered with one
//!   [`Response::Busy`] frame and closed — never queued invisibly.
//! * **Requests**: executing a data-plane request requires a permit
//!   from the [`InflightGauge`]; an exhausted budget yields a typed
//!   [`Response::Busy`] on that connection (the connection stays open,
//!   the client retries). Control-plane requests (`stats`, `shutdown`)
//!   bypass the budget so an overloaded server can still be observed
//!   and drained.
//!
//! ## Shutdown
//!
//! A `shutdown` RPC flips the service's drain flag. The accept loop
//! stops, every worker's blocking read times out within the configured
//! read timeout and observes the flag, in-flight requests finish, the
//! workers are joined, the durable store's WAL is flushed via
//! `AlertSystem::sync`, the Unix socket file is removed, and `serve`
//! returns.

use crate::service::AlertService;
use crate::wire::{
    decode_request, encode_response, error_response, read_frame_abortable, write_frame, FrameIn,
    Request, Response,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sla_core::{SlaError, SlaResult};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Tuning for one [`SlaServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads = maximum concurrently served connections.
    pub workers: usize,
    /// Data-plane requests allowed in flight at once across all
    /// connections (the [`InflightGauge`] budget).
    pub max_in_flight: usize,
    /// Socket read timeout — the interval at which a blocked worker
    /// polls the drain flag, and therefore the worst-case lag between a
    /// `shutdown` RPC and idle connections noticing it.
    pub read_timeout: Duration,
    /// Base seed for the per-connection RNGs (each connection derives
    /// its own deterministic stream from this and its connection id).
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            max_in_flight: 64,
            read_timeout: Duration::from_millis(25),
            seed: 0x51a_5e41e5,
        }
    }
}

/// The global data-plane request budget: a saturating counting
/// semaphore. `try_acquire` never blocks — callers translate exhaustion
/// into a typed [`Response::Busy`] instead of queueing.
#[derive(Debug)]
pub struct InflightGauge {
    limit: usize,
    current: AtomicUsize,
}

impl InflightGauge {
    /// A gauge admitting at most `limit` concurrent holders.
    pub fn new(limit: usize) -> Self {
        InflightGauge {
            limit,
            current: AtomicUsize::new(0),
        }
    }

    /// The configured budget.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Requests currently holding a permit.
    pub fn in_flight(&self) -> usize {
        self.current.load(Ordering::Acquire)
    }

    /// Takes a permit if the budget allows, without blocking.
    pub fn try_acquire(&self) -> Option<InflightPermit<'_>> {
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            if cur >= self.limit {
                return None;
            }
            match self.current.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(InflightPermit(self)),
                Err(now) => cur = now,
            }
        }
    }
}

/// RAII permit from an [`InflightGauge`]; dropping it releases the slot.
#[derive(Debug)]
pub struct InflightPermit<'a>(&'a InflightGauge);

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.0.current.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Why [`serve_connection`] returned.
#[derive(Debug, PartialEq, Eq)]
pub enum ConnOutcome {
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// The server began draining while this connection was idle.
    Drained,
    /// This connection delivered the accepted `shutdown` RPC.
    ShutdownRequested,
    /// The stream tore mid-frame (disconnect, CRC mismatch, oversized
    /// or unparseable frame) and was dropped.
    Torn(String),
}

/// Serves one connection to completion: a loop of read frame → decode →
/// budget check → execute → write frame. Standalone and generic over
/// the stream so it works identically under the thread pool, in unit
/// tests over `UnixStream::pair`, or beneath a future epoll reactor.
///
/// Torn or undecodable input ends the connection (a best-effort typed
/// error frame is sent first when the framing itself was intact);
/// `io::Error` is returned only for transport failures writing a
/// response.
pub fn serve_connection<S: Read + Write, R: Rng>(
    io: &mut S,
    service: &AlertService,
    gauge: &InflightGauge,
    rng: &mut R,
) -> io::Result<ConnOutcome> {
    loop {
        let frame = read_frame_abortable(io, &mut || service.is_draining())?;
        let payload = match frame {
            FrameIn::Frame(p) => p,
            FrameIn::Closed => return Ok(ConnOutcome::Closed),
            FrameIn::Aborted => return Ok(ConnOutcome::Drained),
            FrameIn::Torn(detail) => {
                // Best-effort: the stream may already be gone.
                let resp = error_response(&SlaError::Protocol {
                    detail: detail.clone(),
                });
                let _ = write_frame(io, &encode_response(&resp));
                return Ok(ConnOutcome::Torn(detail));
            }
        };
        let req = match decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                // The CRC was valid, so the peer speaks a different
                // protocol revision: answer typed, then drop — the
                // stream cannot be trusted frame-to-frame.
                let resp = error_response(&e.clone().into());
                let _ = write_frame(io, &encode_response(&resp));
                return Ok(ConnOutcome::Torn(e.0));
            }
        };
        let control_plane = matches!(req, Request::Stats | Request::Shutdown);
        let resp = if control_plane {
            service.handle(&req, rng)
        } else {
            match gauge.try_acquire() {
                Some(_permit) => service.handle(&req, rng),
                None => {
                    service.note_busy();
                    Response::Busy {
                        in_flight_limit: gauge.limit() as u32,
                    }
                }
            }
        };
        let shutdown = matches!(resp, Response::ShuttingDown);
        write_frame(io, &encode_response(&resp))?;
        if shutdown {
            return Ok(ConnOutcome::ShutdownRequested);
        }
    }
}

/// The two stream flavors the server accepts, unified behind
/// `Read + Write` for [`serve_connection`].
#[derive(Debug)]
enum StreamKind {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl StreamKind {
    fn set_timeouts(&self, read: Duration) -> io::Result<()> {
        // The write timeout bounds how long a dead peer with a full
        // socket buffer can hold a worker hostage.
        let write = Some(read.max(Duration::from_secs(5)));
        match self {
            StreamKind::Tcp(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(write)
            }
            StreamKind::Unix(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(write)
            }
        }
    }
}

impl Read for StreamKind {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.read(buf),
            StreamKind::Unix(s) => s.read(buf),
        }
    }
}

impl Write for StreamKind {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.write(buf),
            StreamKind::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            StreamKind::Tcp(s) => s.flush(),
            StreamKind::Unix(s) => s.flush(),
        }
    }
}

#[derive(Debug)]
enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl ListenerKind {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            ListenerKind::Tcp(l) => l.set_nonblocking(true),
            ListenerKind::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<StreamKind> {
        match self {
            ListenerKind::Tcp(l) => l.accept().map(|(s, _)| StreamKind::Tcp(s)),
            ListenerKind::Unix(l) => l.accept().map(|(s, _)| StreamKind::Unix(s)),
        }
    }
}

/// What a completed [`SlaServer::serve`] run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections handed to a worker.
    pub connections: u64,
    /// Connections rejected with a [`Response::Busy`] frame because the
    /// pool and its hand-off queue were full.
    pub rejected_connections: u64,
}

/// A bound, not-yet-serving server over one endpoint.
#[derive(Debug)]
pub struct SlaServer {
    service: Arc<AlertService>,
    config: ServerConfig,
    listener: ListenerKind,
    /// Set for Unix endpoints: removed on graceful shutdown.
    socket_path: Option<PathBuf>,
    local_addr: String,
}

impl SlaServer {
    /// Binds a Unix-domain endpoint at `path` (a stale socket file from
    /// a previous run is removed first).
    pub fn bind_unix(
        service: AlertService,
        path: impl Into<PathBuf>,
        config: ServerConfig,
    ) -> SlaResult<Self> {
        let path = path.into();
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        Ok(SlaServer {
            service: Arc::new(service),
            config,
            listener: ListenerKind::Unix(listener),
            local_addr: format!("unix://{}", path.display()),
            socket_path: Some(path),
        })
    }

    /// Binds a TCP endpoint at `addr` (e.g. `127.0.0.1:0` to let the
    /// kernel pick a port — read it back via [`Self::local_addr`]).
    pub fn bind_tcp(service: AlertService, addr: &str, config: ServerConfig) -> SlaResult<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(SlaServer {
            service: Arc::new(service),
            config,
            listener: ListenerKind::Tcp(listener),
            socket_path: None,
            local_addr: format!("tcp://{local}"),
        })
    }

    /// The bound endpoint (`unix://<path>` or `tcp://<ip>:<port>` with
    /// the actual port).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// A handle to the shared service (e.g. to drain from a signal
    /// handler instead of the `shutdown` RPC).
    pub fn service(&self) -> Arc<AlertService> {
        Arc::clone(&self.service)
    }

    /// Runs the accept loop until the service drains, then joins every
    /// worker, flushes the durable store, and removes the Unix socket
    /// file. Blocks the calling thread for the server's whole life.
    pub fn serve(self) -> SlaResult<ServeReport> {
        self.listener.set_nonblocking()?;
        let gauge = Arc::new(InflightGauge::new(self.config.max_in_flight));
        // Bounded hand-off: room for one burst of `workers` connections
        // beyond the ones being served; anything past that is Busy.
        let (tx, rx) = sync_channel::<(StreamKind, u64)>(self.config.workers);
        let rx = Arc::new(Mutex::new(rx));
        let poll = self.config.read_timeout;

        let mut pool = Vec::with_capacity(self.config.workers);
        for _ in 0..self.config.workers {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&self.service);
            let gauge = Arc::clone(&gauge);
            let seed = self.config.seed;
            pool.push(thread::spawn(move || {
                worker_loop(&rx, &service, &gauge, seed, poll);
            }));
        }

        let mut report = ServeReport {
            connections: 0,
            rejected_connections: 0,
        };
        let mut next_conn = 0u64;
        while !self.service.is_draining() {
            match self.listener.accept() {
                Ok(stream) => {
                    if stream.set_timeouts(self.config.read_timeout).is_err() {
                        continue; // peer already gone
                    }
                    next_conn += 1;
                    match tx.try_send((stream, next_conn)) {
                        Ok(()) => report.connections += 1,
                        Err(TrySendError::Full((mut stream, _))) => {
                            report.rejected_connections += 1;
                            self.service.note_busy();
                            let busy = Response::Busy {
                                in_flight_limit: self.config.workers as u32,
                            };
                            let _ = write_frame(&mut stream, &encode_response(&busy));
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(poll),
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::Interrupted | ErrorKind::ConnectionAborted
                    ) => {}
                Err(e) => return Err(e.into()),
            }
        }

        // Drain: stop handing out work, let every worker observe the
        // flag (their reads time out within `read_timeout`), join them,
        // then flush the WAL so a restart recovers everything.
        drop(tx);
        for handle in pool {
            let _ = handle.join();
        }
        self.service.sync()?;
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(report)
    }
}

/// One pool worker: pull a connection, serve it to completion, repeat;
/// exit when the server drains or the accept loop hangs up.
fn worker_loop(
    rx: &Mutex<Receiver<(StreamKind, u64)>>,
    service: &AlertService,
    gauge: &InflightGauge,
    seed: u64,
    poll: Duration,
) {
    loop {
        if service.is_draining() {
            return;
        }
        // Hold the lock only for the dequeue, not while serving.
        let next = rx
            .lock()
            .expect("receiver lock poisoned")
            .recv_timeout(poll);
        match next {
            Ok((mut stream, conn_id)) => {
                let mut rng = StdRng::seed_from_u64(
                    seed.wrapping_add(conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                // Transport errors end the connection; the next one is
                // independent.
                let _ = serve_connection(&mut stream, service, gauge, &mut rng);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_response, encode_request, read_frame, ErrorCode, MAX_FRAME_BYTES};
    use sla_core::{StoreBackend, SystemBuilder};
    use sla_grid::{Grid, ProbabilityMap};

    fn service() -> AlertService {
        let mut rng = StdRng::seed_from_u64(0xc0ffee);
        let grid = Grid::chicago_downtown_32();
        let probs = ProbabilityMap::uniform(grid.n_cells());
        let system = SystemBuilder::new(grid)
            .group_bits(40)
            .store(StoreBackend::ConcurrentSharded { shards: 4 })
            .build(&probs, &mut rng)
            .expect("valid configuration");
        AlertService::new(system).expect("concurrent backend")
    }

    /// Runs one client script against `serve_connection` over a real
    /// socketpair and returns the decoded responses plus the outcome.
    fn roundtrip(
        service: &AlertService,
        gauge: &InflightGauge,
        requests: &[Request],
    ) -> (Vec<Response>, ConnOutcome) {
        let (mut client, mut server) = UnixStream::pair().expect("socketpair");
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let outcome = thread::scope(|s| {
            let handle = s.spawn(|| {
                let mut rng = StdRng::seed_from_u64(9);
                serve_connection(&mut server, service, gauge, &mut rng).expect("serve")
            });
            let mut responses = Vec::new();
            for req in requests {
                write_frame(&mut client, &encode_request(req)).unwrap();
                match read_frame(&mut client).unwrap() {
                    FrameIn::Frame(p) => responses.push(decode_response(&p).unwrap()),
                    other => panic!("{other:?}"),
                }
            }
            drop(client);
            (responses, handle.join().expect("worker panicked"))
        });
        outcome
    }

    #[test]
    fn serves_a_session_end_to_end() {
        let service = service();
        let gauge = InflightGauge::new(4);
        let (responses, outcome) = roundtrip(
            &service,
            &gauge,
            &[
                Request::Subscribe {
                    user_id: 42,
                    cell: 3,
                },
                Request::Alert { cells: vec![3, 4] },
                Request::Unsubscribe { user_id: 42 },
            ],
        );
        assert_eq!(outcome, ConnOutcome::Closed);
        assert_eq!(responses[0], Response::Subscribed { replaced: false });
        match &responses[1] {
            Response::Alerted { notified, .. } => assert_eq!(notified, &vec![42]),
            other => panic!("{other:?}"),
        }
        assert_eq!(responses[2], Response::Unsubscribed);
        assert_eq!(gauge.in_flight(), 0);
    }

    #[test]
    fn zero_budget_yields_busy_but_control_plane_passes() {
        let service = service();
        let gauge = InflightGauge::new(0);
        let (responses, outcome) = roundtrip(
            &service,
            &gauge,
            &[
                Request::Subscribe {
                    user_id: 1,
                    cell: 0,
                },
                Request::Stats,
            ],
        );
        assert_eq!(outcome, ConnOutcome::Closed);
        assert_eq!(responses[0], Response::Busy { in_flight_limit: 0 });
        match &responses[1] {
            Response::Stats(stats) => {
                assert_eq!(stats.busy_rejections, 1);
                assert_eq!(stats.subscriptions, 0, "rejected op must not execute");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn torn_client_write_gets_protocol_error_and_drop() {
        let service = service();
        let gauge = InflightGauge::new(4);
        let (mut client, mut server) = UnixStream::pair().expect("socketpair");
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        thread::scope(|s| {
            let handle = s.spawn(|| {
                let mut rng = StdRng::seed_from_u64(9);
                serve_connection(&mut server, &service, &gauge, &mut rng).expect("serve")
            });
            // A frame claiming more than the cap.
            client
                .write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())
                .unwrap();
            match read_frame(&mut client).unwrap() {
                FrameIn::Frame(p) => match decode_response(&p).unwrap() {
                    Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            }
            match handle.join().expect("worker panicked") {
                ConnOutcome::Torn(detail) => assert!(detail.contains("cap"), "{detail}"),
                other => panic!("{other:?}"),
            }
        });
    }

    #[test]
    fn shutdown_rpc_ends_the_connection_and_flags_drain() {
        let service = service();
        let gauge = InflightGauge::new(4);
        let (responses, outcome) = roundtrip(&service, &gauge, &[Request::Shutdown]);
        assert_eq!(outcome, ConnOutcome::ShutdownRequested);
        assert_eq!(responses, vec![Response::ShuttingDown]);
        assert!(service.is_draining());
    }

    #[test]
    fn draining_service_aborts_idle_connections() {
        let service = service();
        service.begin_drain();
        let gauge = InflightGauge::new(4);
        let (_client, mut server) = UnixStream::pair().expect("socketpair");
        server
            .set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let outcome = serve_connection(&mut server, &service, &gauge, &mut rng).expect("serve");
        assert_eq!(outcome, ConnOutcome::Drained);
    }

    #[test]
    fn gauge_budget_is_exact() {
        let gauge = InflightGauge::new(2);
        let a = gauge.try_acquire().expect("slot 1");
        let _b = gauge.try_acquire().expect("slot 2");
        assert!(gauge.try_acquire().is_none());
        assert_eq!(gauge.in_flight(), 2);
        drop(a);
        assert_eq!(gauge.in_flight(), 1);
        assert!(gauge.try_acquire().is_some());
    }
}
