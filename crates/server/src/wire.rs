//! The wire protocol: request/response payloads and CRC-checked frame
//! I/O.
//!
//! ## Framing
//!
//! Every message on the wire is one frame, in the exact style of the
//! `sla-persist` on-disk codec:
//!
//! ```text
//! [len: u32 LE] [payload: len bytes] [crc: u32 LE]
//! ```
//!
//! where `crc = crc32(len_bytes ‖ payload)` — the CRC covers the length
//! field, so a corrupted length cannot silently re-frame the stream.
//! Frames larger than [`MAX_FRAME_BYTES`] are rejected **before** the
//! payload is allocated. A frame that ends mid-stream (client
//! disconnect, torn write) is distinguishable from a clean close at a
//! frame boundary; see [`FrameIn`].
//!
//! ## Payloads
//!
//! Payloads are tag-dispatched little-endian structs ([`Request`] /
//! [`Response`]), every integer fixed-width LE, lists behind a `u32`
//! count, strings behind a `u32` byte length. Decoding is strict: an
//! unknown tag, an undersized list, or trailing bytes all fail with a
//! [`DecodeError`] — reaching one through a valid CRC means the peer
//! speaks a different protocol version, and the connection is dropped
//! rather than resynced.

use sla_core::{ServiceStats, SlaError};
use sla_persist::crc::crc32;
use std::io::{self, ErrorKind, Read, Write};

/// Hard ceiling on one frame (length field), applied on both sides
/// before any allocation. Generous for this protocol: the largest real
/// message is an `Alerted` response carrying one `u64` per notified
/// user, so 1 MiB covers ~130k notifications per alert.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Subscribe (or move) `user_id` at `cell` — the server encrypts the
    /// update and upserts it through the shared-store seam.
    Subscribe {
        /// The user subscribing.
        user_id: u64,
        /// The grid cell (validated server-side against the grid).
        cell: u64,
    },
    /// Drop `user_id`'s subscription.
    Unsubscribe {
        /// The user unsubscribing.
        user_id: u64,
    },
    /// Issue an alert over `cells`, serial matching path.
    Alert {
        /// The alert zone's cell indices.
        cells: Vec<u64>,
    },
    /// Issue an alert over `cells` through the parallel batch path.
    BatchAlert {
        /// Explicit chunk size; `0` picks the server's per-core default.
        chunk_size: u32,
        /// The alert zone's cell indices.
        cells: Vec<u64>,
    },
    /// Snapshot the serving stats (never takes a write lock).
    Stats,
    /// Gracefully shut the server down: stop accepting, drain
    /// connections, flush the durable store's WAL, exit.
    Shutdown,
}

impl Request {
    /// Short label for latency accounting (one histogram per kind).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Subscribe { .. } => "subscribe",
            Request::Unsubscribe { .. } => "unsubscribe",
            Request::Alert { .. } => "alert",
            Request::BatchAlert { .. } => "batch_alert",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The subscription was stored.
    Subscribed {
        /// `true` when a previous ciphertext was replaced (the user
        /// moved), `false` on first insert.
        replaced: bool,
    },
    /// The subscription was removed.
    Unsubscribed,
    /// The alert was evaluated.
    Alerted {
        /// Users inside the alert zone, sorted.
        notified: Vec<u64>,
        /// Tokens the TA issued after minimization.
        tokens_issued: u32,
        /// Pairings the SP spent (live engine counter delta; only
        /// meaningful when no other alert ran concurrently).
        pairings_used: u64,
    },
    /// The serving stats snapshot.
    Stats(WireStats),
    /// Shutdown acknowledged; the server drains and exits after this.
    ShuttingDown,
    /// **Backpressure**: the server's bounded in-flight request budget
    /// is exhausted. The request was *not* executed; retry after a
    /// backoff. Typed instead of queueing, so overload degrades into
    /// explicit rejections rather than unbounded latency.
    Busy {
        /// The budget that was exhausted (requests in flight).
        in_flight_limit: u32,
    },
    /// The request failed with a typed error.
    Error {
        /// The service-level error family.
        code: ErrorCode,
        /// Rendered detail for operators.
        detail: String,
    },
}

/// The wire image of the serving-stats snapshot
/// (`sla_core::ServiceStats` plus the server's own RPC counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStats {
    /// Store backend name.
    pub backend: String,
    /// Number of store shards.
    pub shards: u64,
    /// Live subscriptions.
    pub subscriptions: u64,
    /// Current service epoch.
    pub epoch: u64,
    /// Lifetime first-time inserts.
    pub inserted: u64,
    /// Lifetime replacing upserts.
    pub replaced: u64,
    /// Lifetime unsubscribes.
    pub unsubscribed: u64,
    /// Lifetime TTL evictions.
    pub evicted: u64,
    /// The epoch a durable backend recovered at open.
    pub recovered_epoch: Option<u64>,
    /// Requests served, by kind: subscribe/unsubscribe upserts.
    pub ops_subscribe: u64,
    /// Unsubscribe requests served.
    pub ops_unsubscribe: u64,
    /// Alert requests served (serial + batch).
    pub ops_alert: u64,
    /// Stats requests served.
    pub ops_stats: u64,
    /// Requests rejected with [`Response::Busy`].
    pub busy_rejections: u64,
    /// Alert tokens freshly generated by the tracked (incremental)
    /// regeneration path.
    pub tokens_regenerated: u64,
    /// Cells that entered tracked alert zones across epochs.
    pub cells_entered: u64,
    /// Cells that exited tracked alert zones across epochs.
    pub cells_exited: u64,
    /// Per-lane durability stats in shard order (lane index == shard
    /// index). Empty on volatile backends.
    pub lanes: Vec<WireLaneStats>,
}

/// One durability lane's wire stats (see
/// `sla_core::DurabilityLaneStats`; the shard index is the position in
/// [`WireStats::lanes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLaneStats {
    /// The lane's current WAL generation.
    pub wal_generation: u64,
    /// Ops appended to the lane since its last snapshot.
    pub depth: u64,
}

/// The wire error taxonomy — a stable numeric mirror of the
/// [`SlaError`] families a server can raise while serving (plus
/// [`ErrorCode::ShuttingDown`] for requests racing a drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// A cell outside the server's grid.
    CellOutOfRange = 1,
    /// An unsubscribe for a user with no stored subscription.
    UnknownUser = 2,
    /// A user id outside the HVE message domain.
    MessageOutOfDomain = 3,
    /// The server's store backend cannot mutate through `&self`
    /// (misconfiguration; the server refuses to start this way).
    NotConcurrent = 4,
    /// Durable-store I/O failure underneath the request.
    Storage = 5,
    /// Durable-store corruption underneath the request.
    Corrupt = 6,
    /// Transport-level I/O failure.
    Io = 7,
    /// The peer's bytes did not parse (torn frame, CRC mismatch,
    /// oversized frame, unknown tag, trailing bytes).
    Protocol = 8,
    /// The server is draining; no new requests are executed.
    ShuttingDown = 9,
    /// Any other `SlaError` (rendered in the detail).
    Internal = 10,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::CellOutOfRange,
            2 => ErrorCode::UnknownUser,
            3 => ErrorCode::MessageOutOfDomain,
            4 => ErrorCode::NotConcurrent,
            5 => ErrorCode::Storage,
            6 => ErrorCode::Corrupt,
            7 => ErrorCode::Io,
            8 => ErrorCode::Protocol,
            9 => ErrorCode::ShuttingDown,
            10 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Maps a service-layer error onto its wire family (the detail keeps
/// the full rendered form).
pub fn error_response(err: &SlaError) -> Response {
    let code = match err {
        SlaError::CellOutOfRange { .. } => ErrorCode::CellOutOfRange,
        SlaError::UnknownUser { .. } => ErrorCode::UnknownUser,
        SlaError::MessageOutOfDomain { .. } => ErrorCode::MessageOutOfDomain,
        SlaError::StoreNotConcurrent => ErrorCode::NotConcurrent,
        SlaError::Storage { .. } => ErrorCode::Storage,
        SlaError::Corrupt { .. } => ErrorCode::Corrupt,
        SlaError::Io { .. } => ErrorCode::Io,
        SlaError::Protocol { .. } => ErrorCode::Protocol,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        detail: err.to_string(),
    }
}

/// Why a CRC-valid payload failed to decode (version skew or a peer
/// speaking another protocol — the connection is dropped, not resynced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for SlaError {
    fn from(e: DecodeError) -> Self {
        SlaError::Protocol { detail: e.0 }
    }
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

const REQ_SUBSCRIBE: u8 = 1;
const REQ_UNSUBSCRIBE: u8 = 2;
const REQ_ALERT: u8 = 3;
const REQ_BATCH_ALERT: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;

const RESP_SUBSCRIBED: u8 = 1;
const RESP_UNSUBSCRIBED: u8 = 2;
const RESP_ALERTED: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_SHUTTING_DOWN: u8 = 5;
const RESP_BUSY: u8 = 6;
const RESP_ERROR: u8 = 7;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_vec_u64(out: &mut Vec<u8>, v: &[u64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u64(out, x);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
        None => out.push(0),
    }
}

/// Encodes one request payload (no frame).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Subscribe { user_id, cell } => {
            out.push(REQ_SUBSCRIBE);
            put_u64(&mut out, *user_id);
            put_u64(&mut out, *cell);
        }
        Request::Unsubscribe { user_id } => {
            out.push(REQ_UNSUBSCRIBE);
            put_u64(&mut out, *user_id);
        }
        Request::Alert { cells } => {
            out.push(REQ_ALERT);
            put_vec_u64(&mut out, cells);
        }
        Request::BatchAlert { chunk_size, cells } => {
            out.push(REQ_BATCH_ALERT);
            put_u32(&mut out, *chunk_size);
            put_vec_u64(&mut out, cells);
        }
        Request::Stats => out.push(REQ_STATS),
        Request::Shutdown => out.push(REQ_SHUTDOWN),
    }
    out
}

/// Encodes one response payload (no frame).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Subscribed { replaced } => {
            out.push(RESP_SUBSCRIBED);
            out.push(u8::from(*replaced));
        }
        Response::Unsubscribed => out.push(RESP_UNSUBSCRIBED),
        Response::Alerted {
            notified,
            tokens_issued,
            pairings_used,
        } => {
            out.push(RESP_ALERTED);
            put_vec_u64(&mut out, notified);
            put_u32(&mut out, *tokens_issued);
            put_u64(&mut out, *pairings_used);
        }
        Response::Stats(stats) => {
            out.push(RESP_STATS);
            put_str(&mut out, &stats.backend);
            put_u64(&mut out, stats.shards);
            put_u64(&mut out, stats.subscriptions);
            put_u64(&mut out, stats.epoch);
            put_u64(&mut out, stats.inserted);
            put_u64(&mut out, stats.replaced);
            put_u64(&mut out, stats.unsubscribed);
            put_u64(&mut out, stats.evicted);
            put_opt_u64(&mut out, stats.recovered_epoch);
            put_u64(&mut out, stats.ops_subscribe);
            put_u64(&mut out, stats.ops_unsubscribe);
            put_u64(&mut out, stats.ops_alert);
            put_u64(&mut out, stats.ops_stats);
            put_u64(&mut out, stats.busy_rejections);
            put_u64(&mut out, stats.tokens_regenerated);
            put_u64(&mut out, stats.cells_entered);
            put_u64(&mut out, stats.cells_exited);
            put_u32(&mut out, stats.lanes.len() as u32);
            for lane in &stats.lanes {
                put_u64(&mut out, lane.wal_generation);
                put_u64(&mut out, lane.depth);
            }
        }
        Response::ShuttingDown => out.push(RESP_SHUTTING_DOWN),
        Response::Busy { in_flight_limit } => {
            out.push(RESP_BUSY);
            put_u32(&mut out, *in_flight_limit);
        }
        Response::Error { code, detail } => {
            out.push(RESP_ERROR);
            out.push(*code as u8);
            put_str(&mut out, detail);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Payload decoding
// ---------------------------------------------------------------------------

/// A little-endian read cursor over one payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                DecodeError(format!(
                    "payload underrun: need {n} bytes at offset {} of {}",
                    self.pos,
                    self.bytes.len()
                ))
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A `u32`-counted list of `u64`s; the count is validated against
    /// the remaining bytes **before** any allocation, so a corrupted
    /// count cannot ask for gigabytes.
    fn vec_u64(&mut self) -> Result<Vec<u64>, DecodeError> {
        let count = self.u32()? as usize;
        if count * 8 > self.remaining() {
            return Err(DecodeError(format!(
                "list claims {count} u64s but only {} payload bytes remain",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// A `u32`-length-prefixed UTF-8 string (length validated against
    /// the remaining bytes before allocation).
    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(DecodeError(format!(
                "string claims {len} bytes but only {} payload bytes remain",
                self.remaining()
            )));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|e| DecodeError(format!("invalid utf-8 in string: {e}")))
    }

    /// A `u32`-counted list of per-lane stats pairs; like
    /// [`Cursor::vec_u64`], the count is validated against the
    /// remaining bytes before any allocation.
    fn lanes(&mut self) -> Result<Vec<WireLaneStats>, DecodeError> {
        let count = self.u32()? as usize;
        if count * 16 > self.remaining() {
            return Err(DecodeError(format!(
                "lane list claims {count} lanes but only {} payload bytes remain",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(WireLaneStats {
                wal_generation: self.u64()?,
                depth: self.u64()?,
            });
        }
        Ok(out)
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            flag => Err(DecodeError(format!("invalid option flag {flag}"))),
        }
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// Decodes one request payload (the exact inverse of
/// [`encode_request`]; trailing bytes are an error).
pub fn decode_request(payload: &[u8]) -> Result<Request, DecodeError> {
    let mut cur = Cursor::new(payload);
    let req = match cur.u8()? {
        REQ_SUBSCRIBE => Request::Subscribe {
            user_id: cur.u64()?,
            cell: cur.u64()?,
        },
        REQ_UNSUBSCRIBE => Request::Unsubscribe {
            user_id: cur.u64()?,
        },
        REQ_ALERT => Request::Alert {
            cells: cur.vec_u64()?,
        },
        REQ_BATCH_ALERT => Request::BatchAlert {
            chunk_size: cur.u32()?,
            cells: cur.vec_u64()?,
        },
        REQ_STATS => Request::Stats,
        REQ_SHUTDOWN => Request::Shutdown,
        tag => return Err(DecodeError(format!("unknown request tag {tag}"))),
    };
    cur.finish()?;
    Ok(req)
}

/// Decodes one response payload (the exact inverse of
/// [`encode_response`]).
pub fn decode_response(payload: &[u8]) -> Result<Response, DecodeError> {
    let mut cur = Cursor::new(payload);
    let resp = match cur.u8()? {
        RESP_SUBSCRIBED => Response::Subscribed {
            replaced: match cur.u8()? {
                0 => false,
                1 => true,
                v => return Err(DecodeError(format!("invalid bool {v}"))),
            },
        },
        RESP_UNSUBSCRIBED => Response::Unsubscribed,
        RESP_ALERTED => Response::Alerted {
            notified: cur.vec_u64()?,
            tokens_issued: cur.u32()?,
            pairings_used: cur.u64()?,
        },
        RESP_STATS => Response::Stats(WireStats {
            backend: cur.str()?,
            shards: cur.u64()?,
            subscriptions: cur.u64()?,
            epoch: cur.u64()?,
            inserted: cur.u64()?,
            replaced: cur.u64()?,
            unsubscribed: cur.u64()?,
            evicted: cur.u64()?,
            recovered_epoch: cur.opt_u64()?,
            ops_subscribe: cur.u64()?,
            ops_unsubscribe: cur.u64()?,
            ops_alert: cur.u64()?,
            ops_stats: cur.u64()?,
            busy_rejections: cur.u64()?,
            tokens_regenerated: cur.u64()?,
            cells_entered: cur.u64()?,
            cells_exited: cur.u64()?,
            lanes: cur.lanes()?,
        }),
        RESP_SHUTTING_DOWN => Response::ShuttingDown,
        RESP_BUSY => Response::Busy {
            in_flight_limit: cur.u32()?,
        },
        RESP_ERROR => {
            let raw = cur.u8()?;
            let code = ErrorCode::from_u8(raw)
                .ok_or_else(|| DecodeError(format!("unknown error code {raw}")))?;
            Response::Error {
                code,
                detail: cur.str()?,
            }
        }
        tag => return Err(DecodeError(format!("unknown response tag {tag}"))),
    };
    cur.finish()?;
    Ok(resp)
}

/// Builds the serving-stats wire image from the core snapshot plus the
/// server's own RPC counters.
pub fn wire_stats(stats: &ServiceStats, ops: [u64; 4], busy_rejections: u64) -> WireStats {
    WireStats {
        backend: stats.store.backend.to_string(),
        shards: stats.store.shards as u64,
        subscriptions: stats.store.subscriptions as u64,
        epoch: stats.store.epoch,
        inserted: stats.store.inserted,
        replaced: stats.store.replaced,
        unsubscribed: stats.store.unsubscribed,
        evicted: stats.store.evicted,
        recovered_epoch: stats.recovered_epoch,
        ops_subscribe: ops[0],
        ops_unsubscribe: ops[1],
        ops_alert: ops[2],
        ops_stats: ops[3],
        busy_rejections,
        tokens_regenerated: stats.tokens_regenerated,
        cells_entered: stats.cells_entered,
        cells_exited: stats.cells_exited,
        lanes: stats
            .durability_lanes
            .iter()
            .map(|lane| WireLaneStats {
                wal_generation: lane.wal_generation,
                depth: lane.depth as u64,
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// What pulling one frame off a stream produced.
#[derive(Debug)]
pub enum FrameIn {
    /// A complete CRC-valid frame's payload.
    Frame(Vec<u8>),
    /// The peer closed cleanly at a frame boundary (zero bytes read).
    Closed,
    /// The stream ended or failed **inside** a frame: a torn write
    /// followed by disconnect, a CRC mismatch, or an oversized length.
    /// The connection cannot be resynced.
    Torn(String),
    /// The abort predicate fired while waiting (server shutdown).
    Aborted,
}

/// Outcome of filling a fixed buffer from a stream.
enum ReadFull {
    /// The buffer is full.
    Complete,
    /// EOF after this many bytes (0 = clean close).
    Eof(usize),
    /// The abort predicate fired during a timeout window.
    Aborted,
}

/// Fills `buf` from `r`, treating read-timeout errors (`WouldBlock` /
/// `TimedOut`) as polls of `abort` rather than failures — the seam that
/// lets a blocking worker observe the shutdown flag. Real I/O errors
/// propagate.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    abort: &mut impl FnMut() -> bool,
) -> io::Result<ReadFull> {
    let mut n = 0;
    while n < buf.len() {
        match r.read(&mut buf[n..]) {
            Ok(0) => return Ok(ReadFull::Eof(n)),
            Ok(m) => n += m,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if abort() {
                    return Ok(ReadFull::Aborted);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadFull::Complete)
}

/// Reads one frame, polling `abort` whenever a read times out (the
/// stream's own read timeout sets the poll interval). Distinguishes a
/// clean close at a frame boundary ([`FrameIn::Closed`]) from a torn
/// frame ([`FrameIn::Torn`]); enforces [`MAX_FRAME_BYTES`] before
/// allocating the payload.
pub fn read_frame_abortable(
    r: &mut impl Read,
    abort: &mut impl FnMut() -> bool,
) -> io::Result<FrameIn> {
    let mut header = [0u8; 4];
    match read_full(r, &mut header, abort)? {
        ReadFull::Complete => {}
        ReadFull::Eof(0) => return Ok(FrameIn::Closed),
        ReadFull::Eof(n) => {
            return Ok(FrameIn::Torn(format!(
                "disconnect after {n} of 4 length-prefix bytes"
            )))
        }
        ReadFull::Aborted => return Ok(FrameIn::Aborted),
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Ok(FrameIn::Torn(format!(
            "frame claims {len} bytes, cap is {MAX_FRAME_BYTES}"
        )));
    }
    let mut body = vec![0u8; len as usize + 4]; // payload + crc trailer
    match read_full(r, &mut body, abort)? {
        ReadFull::Complete => {}
        ReadFull::Eof(n) => {
            return Ok(FrameIn::Torn(format!(
                "disconnect after {n} of {} frame body bytes",
                body.len()
            )))
        }
        ReadFull::Aborted => return Ok(FrameIn::Aborted),
    }
    let stored = u32::from_le_bytes([
        body[len as usize],
        body[len as usize + 1],
        body[len as usize + 2],
        body[len as usize + 3],
    ]);
    let mut checked = Vec::with_capacity(4 + len as usize);
    checked.extend_from_slice(&header);
    checked.extend_from_slice(&body[..len as usize]);
    let actual = crc32(&checked);
    if stored != actual {
        return Ok(FrameIn::Torn(format!(
            "crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    body.truncate(len as usize);
    Ok(FrameIn::Frame(body))
}

/// [`read_frame_abortable`] with no abort condition — the client side,
/// where reads block until the server answers.
pub fn read_frame(r: &mut impl Read) -> io::Result<FrameIn> {
    read_frame_abortable(r, &mut || false)
}

/// Writes one `[len][payload][crc]` frame and flushes. Blocking: a slow
/// reader applies backpressure through the kernel socket buffer (pair
/// with a socket write timeout to bound how long a dead peer can hold a
/// worker).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(payload);
    let crc = crc32(&frame);
    put_u32(&mut frame, crc);
    w.write_all(&frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let requests = [
            Request::Subscribe {
                user_id: 7,
                cell: 12,
            },
            Request::Unsubscribe { user_id: u64::MAX },
            Request::Alert { cells: vec![] },
            Request::Alert {
                cells: vec![1, 2, 1 << 40],
            },
            Request::BatchAlert {
                chunk_size: 0,
                cells: vec![9],
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in &requests {
            assert_eq!(&decode_request(&encode_request(req)).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrips() {
        let responses = [
            Response::Subscribed { replaced: true },
            Response::Unsubscribed,
            Response::Alerted {
                notified: vec![3, 5, 900],
                tokens_issued: 4,
                pairings_used: 1234,
            },
            Response::Stats(WireStats {
                backend: "persistent".into(),
                shards: 16,
                subscriptions: 40,
                epoch: 3,
                inserted: 44,
                replaced: 11,
                unsubscribed: 4,
                evicted: 0,
                recovered_epoch: Some(2),
                ops_subscribe: 55,
                ops_unsubscribe: 4,
                ops_alert: 6,
                ops_stats: 1,
                busy_rejections: 9,
                tokens_regenerated: 21,
                cells_entered: 13,
                cells_exited: 8,
                lanes: vec![
                    WireLaneStats {
                        wal_generation: 3,
                        depth: 17,
                    },
                    WireLaneStats {
                        wal_generation: 1,
                        depth: 0,
                    },
                ],
            }),
            Response::ShuttingDown,
            Response::Busy {
                in_flight_limit: 64,
            },
            Response::Error {
                code: ErrorCode::CellOutOfRange,
                detail: "cell 99 out of range".into(),
            },
        ];
        for resp in &responses {
            assert_eq!(&decode_response(&encode_response(resp)).unwrap(), resp);
        }
    }

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let payload = encode_request(&Request::Stats);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        match read_frame(&mut &buf[..]).unwrap() {
            FrameIn::Frame(p) => assert_eq!(p, payload),
            other => panic!("{other:?}"),
        }
        // After the frame: clean close.
        let mut rest = &buf[buf.len()..];
        assert!(matches!(read_frame(&mut rest).unwrap(), FrameIn::Closed));
    }

    #[test]
    fn every_frame_prefix_is_torn() {
        let payload = encode_request(&Request::Subscribe {
            user_id: 1,
            cell: 2,
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        for cut in 1..buf.len() {
            match read_frame(&mut &buf[..cut]).unwrap() {
                FrameIn::Torn(_) => {}
                other => panic!("prefix {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, MAX_FRAME_BYTES + 1);
        buf.extend_from_slice(&[0; 16]);
        match read_frame(&mut &buf[..]).unwrap() {
            FrameIn::Torn(detail) => assert!(detail.contains("cap"), "{detail}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_list_count_cannot_force_allocation() {
        // REQ_ALERT with a count far beyond the payload.
        let mut payload = vec![REQ_ALERT];
        put_u32(&mut payload, u32::MAX);
        let err = decode_request(&payload).unwrap_err();
        assert!(err.0.contains("remain"), "{err}");
    }

    #[test]
    fn error_code_mapping_covers_the_taxonomy() {
        let io_err = SlaError::Io {
            detail: "reset".into(),
        };
        match error_response(&io_err) {
            Response::Error { code, detail } => {
                assert_eq!(code, ErrorCode::Io);
                assert!(detail.contains("reset"));
            }
            other => panic!("{other:?}"),
        }
        match error_response(&SlaError::ZeroChunkSize) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Internal),
            other => panic!("{other:?}"),
        }
    }
}
