//! The request executor: an [`AlertSystem`] behind `&self`, plus the
//! server's own RPC counters and drain flag.
//!
//! Every RPC mutates the store through the shared-reference seams
//! (`subscribe_cell_shared`, `unsubscribe_shared`, `issue_alert`), so
//! one [`AlertService`] serves all connections concurrently without an
//! outer lock. The server therefore requires a concurrent-capable store
//! backend ([`AlertService::new`] refuses anything else up front, so
//! the misconfiguration fails at startup rather than on the first
//! request).

use crate::wire::{error_response, wire_stats, Request, Response};
use rand::Rng;
use sla_core::{AlertSystem, SlaError, SlaResult};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The service state shared by every connection handler.
#[derive(Debug)]
pub struct AlertService {
    system: AlertSystem,
    /// Requests served, indexed subscribe/unsubscribe/alert/stats.
    ops: [AtomicU64; 4],
    busy_rejections: AtomicU64,
    draining: AtomicBool,
}

impl AlertService {
    /// Wraps a system for serving.
    ///
    /// `Err(SlaError::StoreNotConcurrent)` unless the system's store
    /// backend supports shared-reference mutation (ConcurrentSharded or
    /// Persistent) — the server cannot serve concurrent churn through
    /// an exclusive backend.
    pub fn new(system: AlertSystem) -> SlaResult<Self> {
        if !system.supports_shared_mutation() {
            return Err(SlaError::StoreNotConcurrent);
        }
        Ok(AlertService {
            system,
            ops: Default::default(),
            busy_rejections: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        })
    }

    /// The wrapped system (tests inspect it after a drain).
    pub fn system(&self) -> &AlertSystem {
        &self.system
    }

    /// `true` once a `shutdown` RPC has been accepted: the accept loop
    /// stops, in-flight requests finish, and no new ones are executed.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Marks the service as draining (the `shutdown` RPC, or a signal
    /// handler if a deployment adds one).
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Records one [`Response::Busy`] rejection (the server's
    /// backpressure gate calls this; it lives here so the count shows
    /// up in `stats`).
    pub fn note_busy(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Flushes the durable store (no-op on volatile backends) — the
    /// last step of a graceful shutdown.
    pub fn sync(&self) -> SlaResult<()> {
        self.system.sync()
    }

    fn count_op(&self, idx: usize) {
        self.ops[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Executes one request. Infallible at this layer: every service
    /// error becomes a typed [`Response::Error`]. Requests that race a
    /// drain are rejected with `ErrorCode::ShuttingDown` instead of
    /// executing against a store that is about to be flushed and
    /// closed.
    pub fn handle<R: Rng>(&self, req: &Request, rng: &mut R) -> Response {
        if self.is_draining() && !matches!(req, Request::Shutdown | Request::Stats) {
            return Response::Error {
                code: crate::wire::ErrorCode::ShuttingDown,
                detail: "server is draining; request not executed".into(),
            };
        }
        match req {
            Request::Subscribe { user_id, cell } => {
                self.count_op(0);
                let cell = match cell_index(*cell, &self.system) {
                    Ok(c) => c,
                    Err(e) => return error_response(&e),
                };
                match self.system.subscribe_cell_shared(*user_id, cell, rng) {
                    Ok(outcome) => Response::Subscribed {
                        replaced: outcome == sla_core::UpsertOutcome::Replaced,
                    },
                    Err(e) => error_response(&e),
                }
            }
            Request::Unsubscribe { user_id } => {
                self.count_op(1);
                match self.system.unsubscribe_shared(*user_id) {
                    Ok(()) => Response::Unsubscribed,
                    Err(e) => error_response(&e),
                }
            }
            Request::Alert { cells } => {
                self.count_op(2);
                match cell_indices(cells, &self.system)
                    .and_then(|cells| self.system.issue_alert(&cells, rng))
                {
                    Ok(outcome) => alerted(outcome),
                    Err(e) => error_response(&e),
                }
            }
            Request::BatchAlert { chunk_size, cells } => {
                self.count_op(2);
                let chunk = if *chunk_size == 0 {
                    None
                } else {
                    Some(*chunk_size as usize)
                };
                match cell_indices(cells, &self.system)
                    .and_then(|cells| self.system.issue_alert_batch(&cells, chunk, rng))
                {
                    Ok(outcome) => alerted(outcome),
                    Err(e) => error_response(&e),
                }
            }
            Request::Stats => {
                self.count_op(3);
                let ops = [
                    self.ops[0].load(Ordering::Relaxed),
                    self.ops[1].load(Ordering::Relaxed),
                    self.ops[2].load(Ordering::Relaxed),
                    // Count this very request.
                    self.ops[3].load(Ordering::Relaxed),
                ];
                Response::Stats(wire_stats(
                    &self.system.service_stats(),
                    ops,
                    self.busy_rejections.load(Ordering::Relaxed),
                ))
            }
            Request::Shutdown => {
                self.begin_drain();
                Response::ShuttingDown
            }
        }
    }
}

fn alerted(outcome: sla_core::AlertOutcome) -> Response {
    Response::Alerted {
        notified: outcome.notified,
        tokens_issued: outcome.tokens_issued as u32,
        pairings_used: outcome.pairings_used,
    }
}

/// Validates one wire cell index against the grid (also catching `u64`
/// values that do not fit `usize` on narrow targets).
fn cell_index(cell: u64, system: &AlertSystem) -> SlaResult<usize> {
    let n_cells = system.grid().n_cells();
    match usize::try_from(cell) {
        Ok(c) if c < n_cells => Ok(c),
        _ => Err(SlaError::CellOutOfRange {
            cell: usize::try_from(cell).unwrap_or(usize::MAX),
            n_cells,
        }),
    }
}

fn cell_indices(cells: &[u64], system: &AlertSystem) -> SlaResult<Vec<usize>> {
    cells.iter().map(|&c| cell_index(c, system)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ErrorCode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_core::{StoreBackend, SystemBuilder};
    use sla_grid::{Grid, ProbabilityMap};

    fn service() -> (AlertService, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x5e41);
        let grid = Grid::chicago_downtown_32();
        let probs = ProbabilityMap::uniform(grid.n_cells());
        let system = SystemBuilder::new(grid)
            .group_bits(40)
            .store(StoreBackend::ConcurrentSharded { shards: 4 })
            .build(&probs, &mut rng)
            .expect("valid configuration");
        (AlertService::new(system).expect("concurrent backend"), rng)
    }

    #[test]
    fn exclusive_backend_is_refused_at_construction() {
        let mut rng = StdRng::seed_from_u64(1);
        let grid = Grid::chicago_downtown_32();
        let probs = ProbabilityMap::uniform(grid.n_cells());
        let system = SystemBuilder::new(grid)
            .group_bits(40)
            .build(&probs, &mut rng)
            .expect("valid configuration");
        assert!(matches!(
            AlertService::new(system),
            Err(SlaError::StoreNotConcurrent)
        ));
    }

    #[test]
    fn requests_execute_against_the_store() {
        let (svc, mut rng) = service();
        let resp = svc.handle(
            &Request::Subscribe {
                user_id: 7,
                cell: 12,
            },
            &mut rng,
        );
        assert_eq!(resp, Response::Subscribed { replaced: false });
        let resp = svc.handle(
            &Request::Subscribe {
                user_id: 7,
                cell: 13,
            },
            &mut rng,
        );
        assert_eq!(resp, Response::Subscribed { replaced: true });

        match svc.handle(&Request::Alert { cells: vec![13] }, &mut rng) {
            Response::Alerted { notified, .. } => assert_eq!(notified, vec![7]),
            other => panic!("{other:?}"),
        }
        // The batch path agrees.
        match svc.handle(
            &Request::BatchAlert {
                chunk_size: 0,
                cells: vec![13],
            },
            &mut rng,
        ) {
            Response::Alerted { notified, .. } => assert_eq!(notified, vec![7]),
            other => panic!("{other:?}"),
        }

        assert_eq!(
            svc.handle(&Request::Unsubscribe { user_id: 7 }, &mut rng),
            { Response::Unsubscribed }
        );
        match svc.handle(&Request::Unsubscribe { user_id: 7 }, &mut rng) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownUser),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_reflect_op_counters() {
        let (svc, mut rng) = service();
        svc.handle(
            &Request::Subscribe {
                user_id: 1,
                cell: 0,
            },
            &mut rng,
        );
        svc.handle(&Request::Alert { cells: vec![0] }, &mut rng);
        svc.note_busy();
        match svc.handle(&Request::Stats, &mut rng) {
            Response::Stats(stats) => {
                assert_eq!(stats.backend, "concurrent-sharded");
                assert_eq!(stats.subscriptions, 1);
                assert_eq!(stats.ops_subscribe, 1);
                assert_eq!(stats.ops_alert, 1);
                assert_eq!(stats.busy_rejections, 1);
                assert_eq!(stats.recovered_epoch, None);
                // Volatile backends have no durability lanes to report.
                assert!(stats.lanes.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_cells_map_to_typed_errors() {
        let (svc, mut rng) = service();
        match svc.handle(
            &Request::Subscribe {
                user_id: 1,
                cell: 1 << 20,
            },
            &mut rng,
        ) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::CellOutOfRange),
            other => panic!("{other:?}"),
        }
        match svc.handle(
            &Request::Alert {
                cells: vec![0, u64::MAX],
            },
            &mut rng,
        ) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::CellOutOfRange),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drain_rejects_new_work_but_answers_stats() {
        let (svc, mut rng) = service();
        assert_eq!(
            svc.handle(&Request::Shutdown, &mut rng),
            Response::ShuttingDown
        );
        assert!(svc.is_draining());
        match svc.handle(
            &Request::Subscribe {
                user_id: 1,
                cell: 0,
            },
            &mut rng,
        ) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            svc.handle(&Request::Stats, &mut rng),
            Response::Stats(_)
        ));
    }
}
