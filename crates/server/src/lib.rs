//! # sla-server
//!
//! The **service plane**: the secure location-based alert protocol of
//! the paper served over a socket, so subscription churn and alert
//! matching arrive from real clients instead of in-process calls.
//!
//! Three layers, each a seam:
//!
//! * [`wire`] — the codec. `[len u32 LE][payload][crc32(len‖payload)
//!   u32 LE]` frames (the `sla-persist` on-disk style, applied to a
//!   stream) carrying tag-dispatched [`Request`]/[`Response`] payloads,
//!   with a hard frame cap enforced before allocation and strict
//!   decoding. Torn input is typed ([`wire::FrameIn::Torn`]), never
//!   resynced.
//! * [`service`] — the executor. An [`sla_core::AlertSystem`] behind
//!   `&self` (the shared-mutation store seam), per-op counters, and the
//!   drain flag. Every error becomes a typed wire error mirroring the
//!   [`sla_core::SlaError`] taxonomy.
//! * [`server`] — the transport. Unix-domain *and* TCP listeners in
//!   front of a hand-rolled blocking worker pool; per-connection logic
//!   lives in the standalone [`serve_connection`], the function an
//!   epoll reactor would call instead. Backpressure is explicit at both
//!   levels (connection hand-off and a bounded in-flight request
//!   budget, both answering typed [`Response::Busy`]), and shutdown is
//!   graceful: drain connections, flush the durable store's WAL,
//!   remove the socket file.
//!
//! The `sla-server` binary wires these to a command line; `sla-loadgen`
//! (its own crate) replays dataset churn workloads against it and
//! records latency histograms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod server;
pub mod service;
pub mod wire;

pub use server::{
    serve_connection, ConnOutcome, InflightGauge, InflightPermit, ServeReport, ServerConfig,
    SlaServer,
};
pub use service::AlertService;
pub use wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame,
    read_frame_abortable, write_frame, DecodeError, ErrorCode, FrameIn, Request, Response,
    WireLaneStats, WireStats, MAX_FRAME_BYTES,
};
