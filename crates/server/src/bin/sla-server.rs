//! `sla-server` — serves the alert protocol over a Unix or TCP socket.
//!
//! ```text
//! cargo run -p sla-server --release -- --socket /tmp/sla.sock
//! cargo run -p sla-server --release -- --tcp 127.0.0.1:0
//! cargo run -p sla-server --release -- --socket /tmp/sla.sock \
//!     --store persistent --dir /var/lib/sla --flush-ms 2
//! ```
//!
//! The system is built over the paper's Chicago-downtown 32×32 grid
//! with a uniform probability map (the loadgen speaks the same grid, so
//! cell indices agree on both ends). On startup the resolved endpoint
//! is printed as `listening on <addr>` — with `--tcp 127.0.0.1:0` that
//! line carries the kernel-assigned port. The server runs until a
//! `shutdown` RPC arrives, then drains connections, flushes the durable
//! store's WAL, and exits 0.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_core::{FlushPolicy, StoreBackend, SystemBuilder};
use sla_grid::{Grid, ProbabilityMap};
use sla_server::{AlertService, ServerConfig, SlaServer};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

struct Opts {
    /// Exactly one endpoint: `--socket <path>` or `--tcp <addr>`.
    endpoint: Endpoint,
    /// `concurrent` (volatile) or `persistent` (WAL + snapshot).
    store: String,
    /// Directory for the persistent store.
    dir: PathBuf,
    /// Group-commit window for the persistent WAL; `0` fsyncs every op.
    flush_ms: u64,
    group_bits: usize,
    shards: usize,
    workers: usize,
    inflight: usize,
    seed: u64,
    /// Permit TCP binds beyond loopback (the wire protocol carries no
    /// authentication, so off-host exposure must be explicit).
    allow_remote: bool,
}

enum Endpoint {
    Unix(PathBuf),
    Tcp(String),
}

/// Typed rejection of a malformed command line.
#[derive(Debug)]
enum ArgError {
    /// A flag that needs a value did not get one.
    MissingValue(&'static str),
    /// A value that did not parse as the expected type.
    Invalid(&'static str, String),
    /// Neither or both of `--socket` / `--tcp`.
    Endpoint,
    /// A flag this binary does not know.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ArgError::Invalid(flag, v) => write!(f, "{flag}: invalid value '{v}'"),
            ArgError::Endpoint => write!(
                f,
                "exactly one endpoint is required: --socket <path> or --tcp <addr>"
            ),
            ArgError::Unknown(flag) => write!(f, "unknown flag '{flag}' (see --help)"),
        }
    }
}

impl std::error::Error for ArgError {}

const USAGE: &str = "\
sla-server — the alert protocol over a socket

USAGE:
    sla-server (--socket <path> | --tcp <addr>) [options]

OPTIONS:
    --socket <path>     Serve on a Unix-domain socket at <path>
    --tcp <addr>        Serve on TCP, e.g. 127.0.0.1:4240 (port 0 = kernel picks)
    --allow-remote      Permit a non-loopback --tcp bind (the protocol is
                        unauthenticated; refused by default)
    --store <backend>   concurrent (default) | persistent
    --dir <path>        Durable store directory (persistent only; default sla-server-store)
    --flush-ms <n>      WAL group-commit window in ms; 0 = fsync every op (default 2)
    --group-bits <n>    Bilinear group size in bits (default 40)
    --shards <n>        Store lock shards (default 8)
    --workers <n>       Worker threads = max concurrent connections (default 8)
    --inflight <n>      Max data-plane requests in flight (default 64)
    --seed <n>          Base RNG seed (default 20210323)
    --help              This text";

fn parse_number<T: std::str::FromStr>(
    flag: &'static str,
    value: Option<String>,
) -> Result<T, ArgError> {
    let v = value.ok_or(ArgError::MissingValue(flag))?;
    v.parse().map_err(|_| ArgError::Invalid(flag, v))
}

fn parse_opts(args: impl Iterator<Item = String>) -> Result<Option<Opts>, ArgError> {
    let mut socket = None;
    let mut tcp = None;
    let mut opts = Opts {
        endpoint: Endpoint::Tcp(String::new()), // placeholder until validated
        store: "concurrent".into(),
        dir: PathBuf::from("sla-server-store"),
        flush_ms: 2,
        group_bits: 40,
        shards: 8,
        workers: 8,
        inflight: 64,
        seed: 20_210_323,
        allow_remote: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--socket" => socket = Some(args.next().ok_or(ArgError::MissingValue("--socket"))?),
            "--tcp" => tcp = Some(args.next().ok_or(ArgError::MissingValue("--tcp"))?),
            "--store" => {
                let v = args.next().ok_or(ArgError::MissingValue("--store"))?;
                if v != "concurrent" && v != "persistent" {
                    return Err(ArgError::Invalid("--store", v));
                }
                opts.store = v;
            }
            "--dir" => {
                opts.dir = PathBuf::from(args.next().ok_or(ArgError::MissingValue("--dir"))?)
            }
            "--flush-ms" => opts.flush_ms = parse_number("--flush-ms", args.next())?,
            "--group-bits" => opts.group_bits = parse_number("--group-bits", args.next())?,
            "--shards" => opts.shards = parse_number("--shards", args.next())?,
            "--workers" => opts.workers = parse_number("--workers", args.next())?,
            "--inflight" => opts.inflight = parse_number("--inflight", args.next())?,
            "--seed" => opts.seed = parse_number("--seed", args.next())?,
            "--allow-remote" => opts.allow_remote = true,
            other => return Err(ArgError::Unknown(other.to_string())),
        }
    }
    opts.endpoint = match (socket, tcp) {
        (Some(path), None) => Endpoint::Unix(PathBuf::from(path)),
        (None, Some(addr)) => Endpoint::Tcp(addr),
        _ => return Err(ArgError::Endpoint),
    };
    Ok(Some(opts))
}

/// Refuse a TCP endpoint that is reachable from off-host unless the
/// operator passed `--allow-remote`. The wire protocol carries no
/// authentication, so exposing it beyond loopback must be a deliberate
/// decision. Every address the endpoint resolves to must be loopback —
/// a hostname with a mixed A-record set is refused, because the kernel
/// may bind any of them.
fn check_bind_scope(addr: &str, allow_remote: bool) -> Result<(), String> {
    if allow_remote {
        return Ok(());
    }
    use std::net::ToSocketAddrs;
    let resolved: Vec<_> = addr
        .to_socket_addrs()
        .map_err(|e| format!("--tcp {addr}: {e}"))?
        .collect();
    if resolved.is_empty() {
        return Err(format!("--tcp {addr}: resolved to no addresses"));
    }
    for sock in resolved {
        if !sock.ip().is_loopback() {
            return Err(format!(
                "--tcp {addr}: {} is not a loopback address; the wire protocol is \
                 unauthenticated — pass --allow-remote to expose it beyond this host",
                sock.ip()
            ));
        }
    }
    Ok(())
}

fn run(opts: Opts) -> Result<(), Box<dyn std::error::Error>> {
    let backend = match opts.store.as_str() {
        "persistent" => StoreBackend::Persistent {
            dir: opts.dir.clone(),
            flush: if opts.flush_ms == 0 {
                FlushPolicy::EveryOp
            } else {
                FlushPolicy::Every(Duration::from_millis(opts.flush_ms))
            },
        },
        _ => StoreBackend::ConcurrentSharded {
            shards: opts.shards,
        },
    };
    let grid = Grid::chicago_downtown_32();
    let probs = ProbabilityMap::uniform(grid.n_cells());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let system = SystemBuilder::new(grid)
        .group_bits(opts.group_bits)
        .store(backend)
        .build(&probs, &mut rng)?;
    let service = AlertService::new(system)?;

    let config = ServerConfig {
        workers: opts.workers,
        max_in_flight: opts.inflight,
        seed: opts.seed,
        ..ServerConfig::default()
    };
    let server = match &opts.endpoint {
        Endpoint::Unix(path) => SlaServer::bind_unix(service, path, config)?,
        Endpoint::Tcp(addr) => {
            check_bind_scope(addr, opts.allow_remote)?;
            SlaServer::bind_tcp(service, addr, config)?
        }
    };

    // The readiness line clients and CI wait for (flushed immediately:
    // with `--tcp ...:0` it carries the kernel-assigned port).
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush()?;

    let report = server.serve()?;
    println!(
        "drained: {} connections served, {} rejected busy",
        report.connections, report.rejected_connections
    );
    Ok(())
}

fn main() {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("sla-server: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(opts) {
        eprintln!("sla-server: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<Opts>, ArgError> {
        parse_opts(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn loopback_binds_are_allowed_by_default() {
        check_bind_scope("127.0.0.1:0", false).unwrap();
        check_bind_scope("127.0.0.1:4240", false).unwrap();
        check_bind_scope("[::1]:4240", false).unwrap();
    }

    #[test]
    fn non_loopback_binds_are_refused_by_default() {
        // The wildcard address exposes every interface; a documentation
        // (TEST-NET-1) address stands in for a routable one. Neither
        // needs DNS to resolve.
        for addr in ["0.0.0.0:4240", "[::]:4240", "192.0.2.7:4240"] {
            let err = check_bind_scope(addr, false).unwrap_err();
            assert!(err.contains("--allow-remote"), "{addr}: {err}");
            assert!(err.contains(addr.rsplit_once(':').unwrap().0.trim_matches(['[', ']'])));
        }
    }

    #[test]
    fn allow_remote_bypasses_the_guard() {
        check_bind_scope("0.0.0.0:4240", true).unwrap();
        check_bind_scope("192.0.2.7:4240", true).unwrap();
    }

    #[test]
    fn allow_remote_flag_parses() {
        let opts = parse(&["--tcp", "0.0.0.0:0", "--allow-remote"])
            .unwrap()
            .unwrap();
        assert!(opts.allow_remote);
        let opts = parse(&["--tcp", "127.0.0.1:0"]).unwrap().unwrap();
        assert!(!opts.allow_remote);
    }

    #[test]
    fn unresolvable_endpoints_are_refused() {
        // Not a valid socket address and not resolvable: the guard
        // surfaces the resolution error instead of binding blind.
        assert!(check_bind_scope("definitely-not-a-real-host.invalid:1", false).is_err());
    }
}
