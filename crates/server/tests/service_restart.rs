//! End-to-end service-plane acceptance over a live Unix socket:
//!
//! * a real `SlaServer` on a `StoreBackend::Persistent` system serves
//!   subscribe/unsubscribe/alert RPCs whose notified sets are
//!   **byte-identical** to an in-process system replaying the same ops
//!   (different RNG draws on each side — notified sets depend only on
//!   who is where, not on ciphertext randomness),
//! * the `shutdown` RPC drains the server and flushes the WAL, so
//!   reopening the server's store directory recovers the exact
//!   subscription base (same `(user_id, epoch)` fingerprint, same
//!   alert outcomes) — restart equivalence *over the wire*,
//! * a client that tears a frame mid-write poisons only its own
//!   connection: the server answers a typed Protocol error, drops that
//!   connection, and keeps serving others.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_core::{AlertSystem, FlushPolicy, StoreBackend, SystemBuilder};
use sla_grid::{BoundingBox, Grid, ProbabilityMap};
use sla_server::{
    decode_response, encode_request, read_frame, write_frame, AlertService, ErrorCode, FrameIn,
    Request, Response, ServerConfig, SlaServer,
};
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const SEED: u64 = 0x5e7;
const N_CELLS: usize = 9;

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "sla-server-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Same builder config on every side (server, in-process mirror, and
/// both reopens): a 3×3 grid, small group, persistent store in `dir`.
fn build_system(dir: &PathBuf) -> AlertSystem {
    std::fs::create_dir_all(dir).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 3, 3);
    let probs = ProbabilityMap::uniform(N_CELLS);
    SystemBuilder::new(grid)
        .group_bits(32)
        .store(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::Manual, // the drain's sync() must cover it
        })
        .build(&probs, &mut rng)
        .expect("valid configuration")
}

fn connect(path: &PathBuf) -> UnixStream {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(path) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                return stream;
            }
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10))
            }
            Err(e) => panic!("connect {}: {e}", path.display()),
        }
    }
}

fn call(stream: &mut UnixStream, req: &Request) -> Response {
    write_frame(stream, &encode_request(req)).expect("write request");
    match read_frame(stream).expect("read response") {
        FrameIn::Frame(payload) => decode_response(&payload).expect("decode response"),
        other => panic!("expected a frame, got {other:?}"),
    }
}

/// The op history both sides replay: subscribes, moves, unsubscribes.
/// Returns the cells each op touches so the wire and in-process sides
/// stay in lockstep.
fn history() -> Vec<(u64, Option<usize>)> {
    let mut ops = Vec::new();
    for user in 0..12u64 {
        ops.push((user, Some((user as usize * 5 + 1) % N_CELLS)));
    }
    for user in [2u64, 5, 8] {
        ops.push((user, Some((user as usize + 4) % N_CELLS))); // moves
    }
    for user in [3u64, 7] {
        ops.push((user, None)); // unsubscribes
    }
    ops
}

#[test]
fn restart_equivalence_over_the_wire() {
    let server_dir = temp_path("wire-store");
    let mirror_dir = temp_path("mirror-store");
    let socket = temp_path("sock");

    // --- Live server on the Unix socket. ---
    let service = AlertService::new(build_system(&server_dir)).expect("persistent is concurrent");
    let server = SlaServer::bind_unix(service, &socket, ServerConfig::default()).expect("bind");
    let service = server.service();
    let server_thread = std::thread::spawn(move || server.serve().expect("serve"));

    // --- The same history over the wire and in-process. ---
    let mirror = build_system(&mirror_dir);
    let mut mirror_rng = StdRng::seed_from_u64(0xd1f); // different draws on purpose
    let mut stream = connect(&socket);
    for (user_id, op) in history() {
        match op {
            Some(cell) => {
                let resp = call(
                    &mut stream,
                    &Request::Subscribe {
                        user_id,
                        cell: cell as u64,
                    },
                );
                assert!(matches!(resp, Response::Subscribed { .. }), "{resp:?}");
                mirror
                    .subscribe_cell_shared(user_id, cell, &mut mirror_rng)
                    .unwrap();
            }
            None => {
                assert_eq!(
                    call(&mut stream, &Request::Unsubscribe { user_id }),
                    Response::Unsubscribed
                );
                mirror.unsubscribe_shared(user_id).unwrap();
            }
        }
    }

    // --- Alerts agree byte-for-byte while the server is live. ---
    let alert_cells: Vec<usize> = vec![0, 1, 4, 6];
    let wire_cells: Vec<u64> = alert_cells.iter().map(|&c| c as u64).collect();
    let wire_notified = match call(
        &mut stream,
        &Request::Alert {
            cells: wire_cells.clone(),
        },
    ) {
        Response::Alerted { notified, .. } => notified,
        other => panic!("{other:?}"),
    };
    let mirror_notified = mirror
        .issue_alert(&alert_cells, &mut mirror_rng)
        .unwrap()
        .notified;
    assert_eq!(wire_notified, mirror_notified, "live wire vs in-process");
    assert!(!wire_notified.is_empty(), "test must actually notify users");
    // The batch path over the wire agrees too.
    match call(
        &mut stream,
        &Request::BatchAlert {
            chunk_size: 2,
            cells: wire_cells,
        },
    ) {
        Response::Alerted { notified, .. } => assert_eq!(notified, wire_notified),
        other => panic!("{other:?}"),
    }

    // --- A second connection tearing a frame does not disturb us. ---
    {
        let mut torn = connect(&socket);
        torn.write_all(&[7u8, 7, 7]).unwrap(); // 3 of 4 length bytes
        drop(torn); // disconnect mid-frame
    }
    assert!(matches!(
        call(&mut stream, &Request::Stats),
        Response::Stats(_)
    ));

    // --- Graceful shutdown: drain + WAL flush + socket removal. ---
    assert_eq!(
        call(&mut stream, &Request::Shutdown),
        Response::ShuttingDown
    );
    let report = server_thread.join().expect("server thread");
    // The torn connection may still sit unaccepted in the listen
    // backlog when the drain starts, so only our own is guaranteed.
    assert!(report.connections >= 1, "{report:?}");
    assert!(!socket.exists(), "socket file must be removed on drain");
    let served_fingerprint = service.system().subscription_epochs();

    // --- Restart both sides from disk. ---
    mirror.sync().unwrap();
    drop(mirror);
    let reopened_server_side = build_system(&server_dir);
    let reopened_mirror_side = build_system(&mirror_dir);
    assert_eq!(
        reopened_server_side.subscription_epochs(),
        served_fingerprint,
        "reopened server store differs from what was served"
    );
    assert_eq!(
        reopened_server_side.subscription_epochs(),
        reopened_mirror_side.subscription_epochs(),
        "server-side and in-process stores diverged across restart"
    );
    assert_eq!(
        reopened_server_side.service_stats().recovered_epoch,
        Some(0)
    );

    let mut rng = StdRng::seed_from_u64(1);
    let a = reopened_server_side
        .issue_alert(&alert_cells, &mut rng)
        .unwrap();
    let b = reopened_mirror_side
        .issue_alert(&alert_cells, &mut rng)
        .unwrap();
    assert_eq!(a.notified, wire_notified, "restart changed the outcome");
    assert_eq!(a.notified, b.notified);
    assert_eq!(a.pairings_used, b.pairings_used);

    for dir in [server_dir, mirror_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn torn_frame_gets_typed_protocol_error_before_disconnect() {
    let socket = temp_path("torn-sock");
    let dir = temp_path("torn-store");
    let service = AlertService::new(build_system(&dir)).expect("persistent is concurrent");
    let server = SlaServer::bind_unix(service, &socket, ServerConfig::default()).expect("bind");
    let service = server.service();
    let server_thread = std::thread::spawn(move || server.serve().expect("serve"));

    let mut stream = connect(&socket);
    // An intact-looking length prefix claiming an over-cap frame.
    stream
        .write_all(&(sla_server::MAX_FRAME_BYTES + 9).to_le_bytes())
        .unwrap();
    match read_frame(&mut stream).expect("read error frame") {
        FrameIn::Frame(payload) => match decode_response(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
    // The server dropped the torn connection; a fresh one still works.
    let mut fresh = connect(&socket);
    assert_eq!(
        call(&mut fresh, &Request::Unsubscribe { user_id: 99 }),
        Response::Error {
            code: ErrorCode::UnknownUser,
            detail: "user 99 has no stored subscription".into()
        }
    );
    assert_eq!(call(&mut fresh, &Request::Shutdown), Response::ShuttingDown);
    server_thread.join().expect("server thread");
    drop(service);
    let _ = std::fs::remove_dir_all(dir);
}
