//! Property coverage for the wire codec:
//!
//! * arbitrary requests and responses round-trip through payload
//!   encoding and CRC framing,
//! * **every** single-byte corruption of a frame is rejected (the CRC
//!   covers the length prefix too, so a corrupted length cannot
//!   re-frame the stream),
//! * **every** strict prefix of a frame reads as torn, never as a
//!   shorter valid frame (torn-write / mid-frame-disconnect safety).

use proptest::prelude::*;
use sla_server::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ErrorCode, FrameIn, Request, Response, WireLaneStats, WireStats,
};

/// Deterministic structure builder over a pool of raw words (the same
/// pattern as the `sla-persist` codec proptests).
struct Pool<'a> {
    raw: &'a [u64],
    i: usize,
}

impl Pool<'_> {
    fn next(&mut self) -> u64 {
        let v = self.raw[self.i % self.raw.len()].wrapping_add(self.i as u64);
        self.i += 1;
        v
    }

    fn small_vec(&mut self) -> Vec<u64> {
        let n = (self.next() % 6) as usize;
        (0..n).map(|_| self.next()).collect()
    }

    fn string(&mut self) -> String {
        let n = (self.next() % 24) as usize;
        (0..n)
            .map(|_| char::from(b'a' + (self.next() % 26) as u8))
            .collect()
    }

    fn opt(&mut self) -> Option<u64> {
        if self.next().is_multiple_of(2) {
            None
        } else {
            Some(self.next())
        }
    }

    fn lanes(&mut self) -> Vec<WireLaneStats> {
        let n = (self.next() % 5) as usize;
        (0..n)
            .map(|_| WireLaneStats {
                wal_generation: self.next(),
                depth: self.next(),
            })
            .collect()
    }
}

fn request_from(raw: &[u64]) -> Request {
    let mut p = Pool { raw, i: 0 };
    match p.next() % 6 {
        0 => Request::Subscribe {
            user_id: p.next(),
            cell: p.next(),
        },
        1 => Request::Unsubscribe { user_id: p.next() },
        2 => Request::Alert {
            cells: p.small_vec(),
        },
        3 => Request::BatchAlert {
            chunk_size: p.next() as u32,
            cells: p.small_vec(),
        },
        4 => Request::Stats,
        _ => Request::Shutdown,
    }
}

fn response_from(raw: &[u64]) -> Response {
    let mut p = Pool { raw, i: 0 };
    match p.next() % 7 {
        0 => Response::Subscribed {
            replaced: p.next().is_multiple_of(2),
        },
        1 => Response::Unsubscribed,
        2 => Response::Alerted {
            notified: p.small_vec(),
            tokens_issued: p.next() as u32,
            pairings_used: p.next(),
        },
        3 => Response::Stats(WireStats {
            backend: p.string(),
            shards: p.next(),
            subscriptions: p.next(),
            epoch: p.next(),
            inserted: p.next(),
            replaced: p.next(),
            unsubscribed: p.next(),
            evicted: p.next(),
            recovered_epoch: p.opt(),
            ops_subscribe: p.next(),
            ops_unsubscribe: p.next(),
            ops_alert: p.next(),
            ops_stats: p.next(),
            busy_rejections: p.next(),
            tokens_regenerated: p.next(),
            cells_entered: p.next(),
            cells_exited: p.next(),
            lanes: p.lanes(),
        }),
        4 => Response::ShuttingDown,
        5 => Response::Busy {
            in_flight_limit: p.next() as u32,
        },
        _ => Response::Error {
            code: match p.next() % 10 {
                0 => ErrorCode::CellOutOfRange,
                1 => ErrorCode::UnknownUser,
                2 => ErrorCode::MessageOutOfDomain,
                3 => ErrorCode::NotConcurrent,
                4 => ErrorCode::Storage,
                5 => ErrorCode::Corrupt,
                6 => ErrorCode::Io,
                7 => ErrorCode::Protocol,
                8 => ErrorCode::ShuttingDown,
                _ => ErrorCode::Internal,
            },
            detail: p.string(),
        },
    }
}

fn framed(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, payload).expect("write to a Vec cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_roundtrip_through_the_frame(raw in prop::collection::vec(any::<u64>(), 4..32)) {
        let req = request_from(&raw);
        let payload = encode_request(&req);
        prop_assert_eq!(decode_request(&payload).unwrap(), req.clone());

        let buf = framed(&payload);
        match read_frame(&mut &buf[..]).unwrap() {
            FrameIn::Frame(p) => prop_assert_eq!(decode_request(&p).unwrap(), req),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn responses_roundtrip_through_the_frame(raw in prop::collection::vec(any::<u64>(), 4..48)) {
        let resp = response_from(&raw);
        let payload = encode_response(&resp);
        prop_assert_eq!(decode_response(&payload).unwrap(), resp.clone());

        let buf = framed(&payload);
        match read_frame(&mut &buf[..]).unwrap() {
            FrameIn::Frame(p) => prop_assert_eq!(decode_response(&p).unwrap(), resp),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn every_single_byte_corruption_is_torn(
        raw in prop::collection::vec(any::<u64>(), 4..24),
        flip_seed in 1u8..,
    ) {
        let buf = framed(&encode_request(&request_from(&raw)));
        for i in 0..buf.len() {
            let mask = (i as u8).wrapping_mul(0x9d) ^ flip_seed;
            let mask = if mask == 0 { 0x80 } else { mask };
            let mut corrupted = buf.clone();
            corrupted[i] ^= mask;
            // A corrupted length prefix may claim more bytes than exist
            // (EOF mid-frame), exceed the cap, or fail the CRC; a
            // corrupted payload or trailer fails the CRC. All are Torn —
            // never a silently different frame.
            prop_assert!(
                matches!(read_frame(&mut &corrupted[..]).unwrap(), FrameIn::Torn(_)),
                "byte {} mask {:#04x} was not rejected", i, mask
            );
        }
    }

    #[test]
    fn every_frame_prefix_is_torn_and_suffix_closed(raw in prop::collection::vec(any::<u64>(), 4..32)) {
        let buf = framed(&encode_response(&response_from(&raw)));
        // A disconnect at any point inside the frame is torn...
        for cut in 1..buf.len() {
            prop_assert!(
                matches!(read_frame(&mut &buf[..cut]).unwrap(), FrameIn::Torn(_)),
                "prefix of {} bytes not torn", cut
            );
        }
        // ...and a disconnect exactly at the boundary is a clean close.
        prop_assert!(matches!(read_frame(&mut &buf[..0]).unwrap(), FrameIn::Closed));
    }
}
