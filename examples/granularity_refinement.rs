//! §4 extension: B-ary Huffman codes and late **granularity refinement**.
//!
//! A ternary (B = 3) coding tree expands each character to a one-hot
//! block, leaving star bits inside cell indexes. Those spare bits let the
//! TA split a cell into sub-cells *later*, without rebuilding the tree or
//! re-keying users — demonstrated here end-to-end with live HVE.
//!
//! ```text
//! cargo run --example granularity_refinement --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::encoding::coding_tree::CodingScheme;
use secure_location_alerts::encoding::huffman::build_bary_huffman_tree;
use secure_location_alerts::encoding::minimize::minimize_to_patterns;
use secure_location_alerts::hve::{AttributeVector, HveScheme};
use secure_location_alerts::pairing::SimulatedGroup;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);

    // The paper's running example: five cells, ternary Huffman (Fig. 6).
    let probs = [0.1, 0.2, 0.5, 0.4, 0.6];
    let tree = build_bary_huffman_tree(&probs, 3);
    let scheme_enc = CodingScheme::from_tree(&tree);
    println!(
        "ternary coding scheme: RL={} chars, HVE width={} bits",
        scheme_enc.reference_length(),
        scheme_enc.width_bits()
    );
    for cell in 0..5 {
        println!(
            "  cell v{}: prefix {:?} -> index {}",
            cell + 1,
            scheme_enc.prefix_code_of(cell),
            scheme_enc.index_of(cell)
        );
    }

    // Pick the most popular cell and refine it into sub-cells using its
    // spare star bits (Fig. 5b: index '20' hosts 4 sub-indexes).
    let hot = 4; // v5, p = 0.6
    let refined = scheme_enc.refinement_indexes(hot);
    println!("\ncell v5 refines into {} sub-cells:", refined.len());
    for (i, idx) in refined.iter().enumerate() {
        println!("  sub-cell {i}: {idx}");
    }

    // Live proof: a token for v5 (issued BEFORE the refinement) still
    // matches users placed in any refined sub-cell — the coding tree is
    // untouched.
    let group = SimulatedGroup::generate(48, &mut rng);
    let hve = HveScheme::new(&group, scheme_enc.width_bits());
    let (pk, sk) = hve.setup(&mut rng);

    let patterns = minimize_to_patterns(&scheme_enc, &[hot]);
    assert_eq!(patterns.len(), 1);
    let token = hve.gen_token(
        &sk,
        &secure_location_alerts::core::codeword_to_pattern(&patterns[0]),
        &mut rng,
    );

    for (i, sub_index) in refined.iter().enumerate() {
        let attr = AttributeVector::from_bits(sub_index.bits());
        let ct = hve.encrypt(&pk, &attr, &hve.encode_message(i as u64), &mut rng);
        let hit = hve.query_decode(&token, &ct);
        println!("token(v5) vs sub-cell {i}: {:?}", hit);
        assert_eq!(hit, Some(i as u64), "pre-refinement token must still match");
    }

    // And a user in a *different* cell still does not match.
    let other = AttributeVector::from_bits(scheme_enc.index_of(2).bits());
    let ct = hve.encrypt(&pk, &other, &hve.encode_message(99), &mut rng);
    assert_eq!(hve.query_decode(&token, &ct), None);
    println!("token(v5) vs cell v3: no match (as required)");
}
