//! Public-safety alerts driven by the crime-risk pipeline of §7.1:
//! synthetic Chicago crime data → logistic regression → per-cell alert
//! likelihoods → Huffman codebook → live encrypted alerting.
//!
//! ```text
//! cargo run --example crime_alerts --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::SystemBuilder;
use secure_location_alerts::datasets::{
    CrimeDataset, CrimeGeneratorConfig, CrimeRiskModel, TrainConfig,
};
use secure_location_alerts::encoding::EncoderKind;
use secure_location_alerts::grid::{AlertZone, Grid, ZoneSampler};

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);

    // 1. Generate the CLEAR-like dataset and train the risk model
    //    (Jan-Nov train, December test), as in the paper.
    let dataset = CrimeDataset::generate(&CrimeGeneratorConfig::default(), &mut rng);
    println!("incidents generated: {}", dataset.len());
    for (cat, months) in dataset.monthly_counts() {
        println!(
            "  {:<15} {:>5} incidents",
            cat.name(),
            months.iter().sum::<usize>()
        );
    }

    let grid = Grid::chicago_downtown_32();
    let model = CrimeRiskModel::train(&dataset, &grid, TrainConfig::default());
    println!(
        "\nlogistic regression December accuracy: {:.1}% (paper: 92.9%)",
        model.test_accuracy() * 100.0
    );
    let probs = model.likelihood_map();

    // 2. Stand up the alert system with the learned likelihoods. A
    //    coarser live grid keeps the cryptographic demo snappy.
    let live_grid = Grid::new(*grid.bbox(), 8, 8);
    let live_probs = coarsen(&probs, 32, 8);
    let mut system = SystemBuilder::new(live_grid.clone())
        .encoder(EncoderKind::Huffman)
        .group_bits(48)
        .build(&live_probs, &mut rng)
        .expect("valid configuration");

    // 3. Subscribers concentrated where people actually are.
    let sampler = ZoneSampler::new(live_grid.clone(), &live_probs);
    for user in 0..40u64 {
        let cell = sampler.sample_epicenter_cell(&mut rng).0;
        system
            .subscribe_cell(user, cell, &mut rng)
            .expect("sampled cells are in range");
    }

    // 4. An incident is reported near a hotspot: alert everyone within
    //    ~one kilometer.
    let epicenter = sampler.sample_epicenter(&mut rng);
    let zone = AlertZone::disk(&live_grid, &epicenter, 1_000.0);
    println!(
        "\nincident at ({:.4}, {:.4}); zone spans {} cells",
        epicenter.lat,
        epicenter.lon,
        zone.len()
    );

    let outcome = system
        .issue_alert(&zone.cell_indices(), &mut rng)
        .expect("zone cells are in range");
    println!(
        "tokens: {}, pairings: {}",
        outcome.tokens_issued, outcome.pairings_used
    );
    println!("notified users: {:?}", outcome.notified);
    assert_eq!(outcome.pairings_used, outcome.analytic_pairings);
}

/// Averages a fine probability map down to a coarser square grid.
fn coarsen(
    probs: &secure_location_alerts::grid::ProbabilityMap,
    fine_side: usize,
    coarse_side: usize,
) -> secure_location_alerts::grid::ProbabilityMap {
    let factor = fine_side / coarse_side;
    let mut out = vec![0.0; coarse_side * coarse_side];
    for row in 0..fine_side {
        for col in 0..fine_side {
            let coarse = (row / factor) * coarse_side + (col / factor);
            out[coarse] += probs.get(row * fine_side + col);
        }
    }
    let k = (factor * factor) as f64;
    secure_location_alerts::grid::ProbabilityMap::new(out.into_iter().map(|p| p / k).collect())
}
