//! Quick sanity probe: serial vs batch alert issuance must produce the
//! same outcome, and the batch plumbing must not add measurable overhead
//! (it parallelizes across cores when more than one is available).

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{StoreBackend, SystemBuilder};
use secure_location_alerts::encoding::EncoderKind;
use secure_location_alerts::grid::{BoundingBox, Grid, ProbabilityMap, SigmoidParams, ZoneSampler};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(20_210_323);
    let grid = Grid::new(BoundingBox::chicago_downtown(), 8, 8);
    let probs = ProbabilityMap::sigmoid_synthetic(
        grid.n_cells(),
        SigmoidParams { a: 0.9, b: 100.0 },
        &mut rng,
    );
    let sampler = ZoneSampler::new(grid.clone(), &probs);
    let mut system = SystemBuilder::new(grid)
        .encoder(EncoderKind::Huffman)
        .group_bits(48)
        .store(StoreBackend::Sharded { shards: 8 })
        .build(&probs, &mut rng)
        .expect("valid configuration");
    for user in 0..64u64 {
        let cell = sampler.sample_epicenter_cell(&mut rng).0;
        system
            .subscribe_cell(user, cell, &mut rng)
            .expect("sampled cells are in range");
    }
    let zone = sampler.sample_zone(600.0, &mut rng);
    let cells = zone.cell_indices();

    let modes = ["serial", "batch"];
    let mut rngs: Vec<StdRng> = (0..2).map(|_| StdRng::seed_from_u64(1)).collect();
    let mut totals = [0u128; 2];
    let mut outcomes = Vec::new();
    for _round in 0..200 {
        for (mi, mode) in modes.iter().enumerate() {
            let t = Instant::now();
            let o = if *mode == "serial" {
                system.issue_alert(&cells, &mut rngs[mi])
            } else {
                system.issue_alert_batch(&cells, None, &mut rngs[mi])
            }
            .expect("zone cells are in range");
            totals[mi] += t.elapsed().as_nanos();
            outcomes.push((o.notified, o.pairings_used, o.tokens_issued));
        }
    }
    let (first, rest) = outcomes.split_first().unwrap();
    assert!(rest.iter().all(|o| o == first), "outcomes diverged");
    for (mi, mode) in modes.iter().enumerate() {
        println!("{mode}: {:.0} us/alert", totals[mi] as f64 / 200.0 / 1000.0);
    }
    println!(
        "notified {} users with {} pairings — identical across paths",
        first.0.len(),
        first.1
    );
}
