//! Contact tracing — the paper's §1/§2.3 motivating scenario.
//!
//! A COVID-positive patient's visited sites become many *compact, sparse*
//! alert zones (a few meters to a room each). This is exactly the regime
//! where Huffman encoding shines: fixed-length schemes cannot aggregate
//! single-cell zones, while popular places carry short Huffman codes.
//!
//! ```text
//! cargo run --example contact_tracing --release
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_location_alerts::core::SystemBuilder;
use secure_location_alerts::encoding::EncoderKind;
use secure_location_alerts::grid::{Grid, ProbabilityMap, SigmoidParams, ZoneSampler};

fn main() {
    let mut rng = StdRng::seed_from_u64(19);

    // Central-Chicago district, 16x16 grid (~600 m cells keep the live
    // HVE demo fast; the analytic experiments use 32x32).
    let grid = Grid::new(
        secure_location_alerts::grid::BoundingBox::chicago_downtown(),
        16,
        16,
    );
    // Popularity surface: skewed, as in the paper's synthetic evaluation.
    let probs = ProbabilityMap::sigmoid_synthetic(
        grid.n_cells(),
        SigmoidParams { a: 0.95, b: 100.0 },
        &mut rng,
    );

    let mut system = SystemBuilder::new(grid.clone())
        .encoder(EncoderKind::Huffman)
        .group_bits(48)
        .build(&probs, &mut rng)
        .expect("valid configuration");

    // 60 subscribers scattered across town, biased toward popular cells.
    let sampler = ZoneSampler::new(grid.clone(), &probs);
    let mut user_cells = Vec::new();
    for user in 0..60u64 {
        let cell = sampler.sample_epicenter_cell(&mut rng).0;
        system
            .subscribe_cell(user, cell, &mut rng)
            .expect("sampled cells are in range");
        user_cells.push((user, cell));
    }

    // The patient visited 5 sites over the last week; each visit is a
    // compact zone around the site (room/store scale: one cell here).
    let mut visited = Vec::new();
    for _ in 0..5 {
        visited.push(sampler.sample_epicenter_cell(&mut rng).0);
    }
    println!("patient trajectory cells: {visited:?}");

    let mut total_pairings = 0u64;
    let mut exposed: Vec<u64> = Vec::new();
    for &site in &visited {
        let outcome = system
            .issue_alert(&[site], &mut rng)
            .expect("sites are in range");
        total_pairings += outcome.pairings_used;
        exposed.extend(&outcome.notified);
    }
    exposed.sort_unstable();
    exposed.dedup();

    // Ground truth from the (plaintext) test harness view.
    let mut expected: Vec<u64> = user_cells
        .iter()
        .filter(|(_, c)| visited.contains(c))
        .map(|(u, _)| *u)
        .collect();
    expected.sort_unstable();
    expected.dedup();

    println!("exposed users (via encrypted matching): {exposed:?}");
    assert_eq!(
        exposed, expected,
        "encrypted matching must equal ground truth"
    );

    // Compare against the fixed-length baseline on the same trajectory.
    let mut baseline = SystemBuilder::new(grid)
        .encoder(EncoderKind::BasicFixed)
        .group_bits(48)
        .build(&probs, &mut rng)
        .expect("valid configuration");
    for &(user, cell) in &user_cells {
        baseline
            .subscribe_cell(user, cell, &mut rng)
            .expect("sampled cells are in range");
    }
    let mut baseline_pairings = 0u64;
    for &site in &visited {
        baseline_pairings += baseline
            .issue_alert(&[site], &mut rng)
            .expect("sites are in range")
            .pairings_used;
    }

    let gain =
        100.0 * (baseline_pairings as f64 - total_pairings as f64) / baseline_pairings as f64;
    println!("\npairings (huffman)     : {total_pairings}");
    println!("pairings (fixed [14])  : {baseline_pairings}");
    println!("improvement            : {gain:.1}%");
    assert!(
        total_pairings <= baseline_pairings,
        "compact zones must favor Huffman"
    );

    // keep rng "used" for clarity of the seeded-demo contract
    let _: u8 = rng.gen();
}
