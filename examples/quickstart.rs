//! Quickstart: the full protocol on a small grid in ~40 lines.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{StoreBackend, SystemBuilder};
use secure_location_alerts::encoding::EncoderKind;
use secure_location_alerts::grid::{BoundingBox, Grid, ProbabilityMap};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A 4x4 grid over a small area; cell 5 and its neighbors are the
    //    "popular" part of town (more likely to host an alert).
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 4, 4);
    let mut likelihoods = vec![0.02; 16];
    for cell in [5usize, 6, 9, 10] {
        likelihoods[cell] = 0.3;
    }
    let probs = ProbabilityMap::new(likelihoods);

    // 2. System initialization (Fig. 3): Huffman codebook + HVE keys.
    //    The builder validates the configuration (probability-map/grid
    //    coverage, group size, store shape) instead of panicking.
    let mut system = SystemBuilder::new(grid)
        .encoder(EncoderKind::Huffman)
        .group_bits(48)
        .store(StoreBackend::Sharded { shards: 4 })
        .build(&probs, &mut rng)
        .expect("valid configuration");
    println!(
        "codebook: {} cells, HVE width {} bits",
        system.codebook().n_cells(),
        system.codebook().width_bits()
    );

    // 3. Users submit encrypted location updates. The SP never sees the
    //    cells in cleartext.
    for (user, cell) in [(101u64, 5usize), (102, 6), (103, 12), (104, 0)] {
        system
            .subscribe_cell(user, cell, &mut rng)
            .expect("cell is in range");
        println!("user {user} encrypted an update for cell {cell}");
    }

    // User 103 moves into the popular block: re-subscribing *replaces*
    // the stored ciphertext, so the old cell no longer matches.
    system
        .subscribe_cell(103, 9, &mut rng)
        .expect("cell is in range");
    println!("user 103 moved to cell 9 (old ciphertext replaced)");

    // 4. An event occurs in the popular block: the TA issues minimized
    //    tokens, the SP matches ciphertexts, matching users are notified.
    let outcome = system
        .issue_alert(&[5, 6, 9, 10], &mut rng)
        .expect("alert cells are in range");
    println!("\nalert zone {{5,6,9,10}}:");
    println!("  tokens issued      : {}", outcome.tokens_issued);
    println!("  non-star bits      : {}", outcome.non_star_bits);
    println!("  pairings performed : {}", outcome.pairings_used);
    println!("  analytic model     : {}", outcome.analytic_pairings);
    println!("  notified users     : {:?}", outcome.notified);

    println!("  store              : {:?}", system.store_stats());

    assert_eq!(outcome.notified, vec![101, 102, 103]);
    assert_eq!(outcome.pairings_used, outcome.analytic_pairings);
}
